"""The rule engine behind ``repro-lint``.

The engine is deliberately small: it loads every ``*.py`` file under the
paths it is given, parses each into an AST exactly once, extracts the
per-line suppression table, and hands the resulting :class:`Project` to
each registered rule.  Rules come in two shapes:

* **per-module** rules implement :meth:`Rule.check_module` and see one
  file at a time (most invariants are local);
* **whole-project** rules additionally implement
  :meth:`Rule.check_project` and see every analyzed module at once
  (import-reachability checks need the graph).

Suppressions
============

A finding is suppressed by a comment naming its rule id, either on the
flagged line itself or on a standalone comment line directly above it::

    total = bytes(view)        # repro-lint: ignore[RL003] escapes decode layer

    # repro-lint: ignore[RL001] wall-clock measurement is the point here
    elapsed = wallclock.perf_counter() - start

Several ids may be listed (``ignore[RL001,RL003]``).  A suppression that
names an id no rule defines is itself reported under ``RL000`` — a typoed
suppression must not silently disable nothing.

Path scoping
============

Rules scope themselves with *path patterns* matched against each file's
path relative to the scanned root, with ``/`` separators:

* ``"transport/wire.py"`` — suffix match on whole path segments, so it
  matches ``src/repro/transport/wire.py`` as well as a fixture tree's
  ``transport/wire.py``, but never ``not_wire.py``;
* ``"deploy/"`` — matches any file under a directory named ``deploy``.

Relative matching keeps the rules equally at home over the real tree and
over the test fixture trees that prove each rule fires.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize

from dataclasses import dataclass, field
from typing import Iterable, Iterator


#: Engine-level findings (parse failures, bad suppressions) carry this id.
ENGINE_RULE_ID = "RL000"

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([^\]]*)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file:line."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class ModuleInfo:
    """One parsed source file plus its suppression table."""

    path: str                   # as given / discovered (for reports)
    rel: str                    # relative to the scanned root, posix slashes
    source: str
    tree: ast.Module
    #: line number -> set of rule ids suppressed on that line.
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: line number of each suppression comment -> ids it names (for RL000).
    suppression_sites: dict[int, set[str]] = field(default_factory=dict)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        ids = self.suppressions.get(line)
        return ids is not None and (rule_id in ids or "*" in ids)


@dataclass
class Project:
    """Everything the analyzer loaded, for whole-project rules."""

    modules: list[ModuleInfo]

    def by_pattern(self, pattern: str) -> list[ModuleInfo]:
        return [mod for mod in self.modules if path_matches(mod.rel, pattern)]


class Rule:
    """Base class for repro-lint rules.

    Subclasses set :attr:`rule_id` and :attr:`title`, and override
    :meth:`check_module` (and :meth:`check_project` for cross-file
    invariants).  ``check_*`` yields raw findings; the engine applies the
    suppression table afterwards, so rules never deal with comments.
    """

    rule_id: str = ""
    title: str = ""

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(module.path, getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0) + 1, self.rule_id, message)


def path_matches(rel: str, pattern: str) -> bool:
    """Match a root-relative posix path against a rule scope pattern."""
    haystack = "/" + rel
    if pattern.endswith("/"):
        return ("/" + pattern) in haystack + "/"
    return haystack.endswith("/" + pattern)


def matches_any(rel: str, patterns: Iterable[str]) -> bool:
    return any(path_matches(rel, pattern) for pattern in patterns)


def identifier_segments(name: str) -> list[str]:
    """Split an identifier into lowercase word segments.

    ``_next_seq`` -> ``["next", "seq"]``; used by name-based rules so that
    ``sack`` or ``dup_acks`` never false-positive a ``seq``/``ack`` check.
    """
    return [segment for segment in name.lower().split("_") if segment]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _parse_suppressions(source: str) -> tuple[dict[int, set[str]], dict[int, set[str]]]:
    """Build (effective-line -> ids, comment-line -> ids) tables.

    Only genuine COMMENT tokens count — prose that merely *mentions* the
    suppression syntax inside a docstring must not suppress anything.
    """
    effective: dict[int, set[str]] = {}
    sites: dict[int, set[str]] = {}
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return effective, sites          # load_module reports the parse error
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        lineno = token.start[0]
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        sites[lineno] = ids
        effective.setdefault(lineno, set()).update(ids)
        text = lines[lineno - 1] if lineno <= len(lines) else ""
        if text.strip().startswith("#"):
            # A standalone suppression comment covers the line below it.
            effective.setdefault(lineno + 1, set()).update(ids)
    return effective, sites


def load_module(path: str, rel: str) -> tuple[ModuleInfo | None, Finding | None]:
    """Parse one file; returns (module, None) or (None, parse finding)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        return None, Finding(path, 1, 1, ENGINE_RULE_ID, f"unreadable file: {exc}")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Finding(path, exc.lineno or 1, (exc.offset or 0) or 1,
                             ENGINE_RULE_ID, f"syntax error: {exc.msg}")
    suppressions, sites = _parse_suppressions(source)
    return ModuleInfo(path=path, rel=rel, source=source, tree=tree,
                      suppressions=suppressions,
                      suppression_sites=sites), None


def discover_files(paths: Iterable[str]) -> list[tuple[str, str]]:
    """Expand CLI path arguments into (path, root-relative path) pairs.

    A directory argument is walked recursively for ``*.py`` files, each
    made relative to the directory's *parent* — the root's own name stays
    a path component, so ``repro-lint benchmarks`` still sees files "under
    benchmarks/" and the wall-clock exemption holds.  A file argument
    keeps the whole given path for the same reason.  Hidden directories
    and ``__pycache__`` are skipped.
    """
    found: list[tuple[str, str]] = []
    for arg in paths:
        if os.path.isfile(arg):
            found.append((arg, arg.replace(os.sep, "/")))
            continue
        root_name = os.path.basename(os.path.abspath(arg))
        for dirpath, dirnames, filenames in os.walk(arg):
            dirnames[:] = sorted(name for name in dirnames
                                 if not name.startswith(".")
                                 and name != "__pycache__")
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                rel = "/".join((root_name,
                                os.path.relpath(full, arg).replace(os.sep, "/")))
                found.append((full, rel))
    return found


class Analyzer:
    """Runs a rule set over a file set and applies suppressions."""

    def __init__(self, rules: Iterable[Rule],
                 known_ids: Iterable[str] | None = None) -> None:
        self.rules = list(rules)
        ids = [rule.rule_id for rule in self.rules]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate rule ids: {ids}")
        # ``known_ids`` lets a --select'ed subset run without misreporting
        # the other rules' suppressions as typos.
        self._known_ids = (set(ids) | set(known_ids or ())
                           | {ENGINE_RULE_ID, "*"})

    def run(self, paths: Iterable[str]) -> list[Finding]:
        modules: list[ModuleInfo] = []
        findings: list[Finding] = []
        for path, rel in discover_files(paths):
            module, parse_finding = load_module(path, rel)
            if parse_finding is not None:
                findings.append(parse_finding)
            if module is not None:
                modules.append(module)
        project = Project(modules=modules)

        raw: list[tuple[ModuleInfo | None, Finding]] = []
        by_path = {module.path: module for module in modules}
        for rule in self.rules:
            for module in modules:
                for finding in rule.check_module(module):
                    raw.append((module, finding))
            for finding in rule.check_project(project):
                raw.append((by_path.get(finding.path), finding))

        for module, finding in raw:
            if module is not None and module.is_suppressed(finding.rule_id,
                                                           finding.line):
                continue
            findings.append(finding)

        findings.extend(self._audit_suppressions(modules))
        return sorted(set(findings), key=Finding.sort_key)

    def _audit_suppressions(self, modules: list[ModuleInfo]) -> Iterator[Finding]:
        """A suppression naming an unknown rule id is itself a finding."""
        for module in modules:
            for lineno, ids in sorted(module.suppression_sites.items()):
                for rule_id in sorted(ids - self._known_ids):
                    yield Finding(module.path, lineno, 1, ENGINE_RULE_ID,
                                  f"suppression names unknown rule id "
                                  f"{rule_id!r}")
