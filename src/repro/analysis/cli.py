"""The ``repro-lint`` command line.

Usage::

    python -m repro.analysis [paths...]       # default: src
    repro-lint --list-rules
    repro-lint --select RL001,RL003 src tests

Exit status composes with CI: 0 when the tree is clean, 1 when any
finding survives suppression, 2 on usage errors.  Findings print as
``path:line:col: RLxxx message`` so editors and CI annotations can anchor
them.
"""

from __future__ import annotations

import argparse
import sys

from typing import Sequence

from repro.analysis.engine import Analyzer, Rule
from repro.analysis.rules import ALL_RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant analyzer for this repository: "
                    "enforces the wall-clock, serial-arithmetic, zero-copy, "
                    "codec-symmetry and fork-safety rules the past PRs paid "
                    "for.  Suppress a finding with "
                    "'# repro-lint: ignore[RLxxx] <why>' on or above the "
                    "flagged line.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--select", metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _select_rules(spec: str | None) -> list[Rule]:
    if spec is None:
        return list(ALL_RULES)
    wanted = {part.strip().upper() for part in spec.split(",") if part.strip()}
    by_id = {rule.rule_id: rule for rule in ALL_RULES}
    unknown = wanted - set(by_id)
    if unknown:
        raise SystemExit(
            f"repro-lint: unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(by_id))})")
    return [by_id[rule_id] for rule_id in sorted(wanted)]


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    try:
        rules = _select_rules(args.select)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    analyzer = Analyzer(rules,
                        known_ids=[rule.rule_id for rule in ALL_RULES])
    findings = analyzer.run(args.paths)
    try:
        for finding in findings:
            print(finding.render())
    except BrokenPipeError:                            # pragma: no cover
        return 1 if findings else 0
    if findings:
        by_rule: dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
        summary = ", ".join(f"{rule_id} x{count}"
                            for rule_id, count in sorted(by_rule.items()))
        print(f"repro-lint: {len(findings)} finding"
              f"{'s' if len(findings) != 1 else ''} ({summary})")
        return 1
    print("repro-lint: clean")
    return 0


if __name__ == "__main__":                             # pragma: no cover
    sys.exit(main())
