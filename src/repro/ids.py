"""48-bit service identifiers.

The paper (Section IV) derives a 48-bit ID for each service from the
transport layer's unicast socket address and port: the IPv4 address
contributes 32 bits and the port 16 bits.  We reproduce that scheme exactly
for socket-backed transports, and provide a deterministic hash-based variant
for simulated transports where no socket exists.

ServiceIds are plain ``int`` subclasses so they remain hashable, ordered and
cheap, while printing in the familiar colon-separated hex form used for
hardware addresses.
"""

from __future__ import annotations

import ipaddress
import zlib

from repro.errors import AddressError

_MASK_48 = (1 << 48) - 1


class ServiceId(int):
    """A 48-bit identifier for an SMC service.

    Instances are immutable integers constrained to 48 bits.  They print as
    six colon-separated hex octets (``0a:00:00:01:1f:90``).
    """

    def __new__(cls, value: int) -> "ServiceId":
        if not isinstance(value, int) or isinstance(value, bool):
            raise AddressError(f"ServiceId requires an int, got {type(value).__name__}")
        if not 0 <= value <= _MASK_48:
            raise AddressError(f"ServiceId out of 48-bit range: {value:#x}")
        return super().__new__(cls, value)

    def __repr__(self) -> str:
        return f"ServiceId({str(self)})"

    def __str__(self) -> str:
        raw = int(self).to_bytes(6, "big")
        return ":".join(f"{b:02x}" for b in raw)

    def to_bytes48(self) -> bytes:
        """Return the big-endian 6-byte wire form of this id."""
        return int(self).to_bytes(6, "big")

    @classmethod
    def from_bytes48(cls, raw: bytes) -> "ServiceId":
        """Parse a 6-byte big-endian wire form."""
        if len(raw) != 6:
            raise AddressError(f"ServiceId wire form must be 6 bytes, got {len(raw)}")
        return cls(int.from_bytes(raw, "big"))


def service_id_from_socket(host: str, port: int) -> ServiceId:
    """Derive a ServiceId from an IPv4 address and port (paper Section IV).

    The IPv4 address supplies the high 32 bits and the port the low 16,
    mirroring the prototype's "48 bit ID ... generated from the transport
    layer's unicast socket and the port number".
    """
    if not 0 <= port <= 0xFFFF:
        raise AddressError(f"port out of range: {port}")
    try:
        packed = int(ipaddress.IPv4Address(host))
    except ipaddress.AddressValueError as exc:
        raise AddressError(f"not an IPv4 address: {host!r}") from exc
    return ServiceId((packed << 16) | port)


def service_id_from_name(name: str) -> ServiceId:
    """Derive a stable ServiceId for a named simulated service.

    Simulated transports have no socket to derive an id from, so we hash the
    node name into 48 bits.  The mapping is deterministic across runs (it
    uses CRC32, not Python's randomised ``hash``) which keeps simulations
    reproducible.
    """
    if not name:
        raise AddressError("service name must be non-empty")
    data = name.encode("utf-8")
    high = zlib.crc32(data)
    low = zlib.crc32(data[::-1] + b"\x00")
    return ServiceId(((high << 16) ^ low) & _MASK_48)


def service_id_address(service_id: ServiceId) -> tuple[str, int]:
    """Invert :func:`service_id_from_socket` back to ``(host, port)``.

    Only meaningful for ids created from sockets; for name-derived ids the
    result is a syntactically valid but arbitrary address.
    """
    value = int(service_id)
    port = value & 0xFFFF
    host = str(ipaddress.IPv4Address(value >> 16))
    return host, port
