"""Mobility models for wireless nodes.

The paper's discovery service must "mask transient disconnections between
components, e.g. a nurse leaves the room for a short period of time before
returning" (Section II-B).  These helpers generate the position functions
the :class:`~repro.sim.radio.SimNetwork` consults when deciding whether two
wireless nodes are in range, letting tests and examples script exactly that
scenario.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.errors import ConfigurationError
from repro.sim.radio import Position


class StaticPosition:
    """A node that never moves."""

    def __init__(self, x: float = 0.0, y: float = 0.0) -> None:
        self._position = (float(x), float(y))

    def __call__(self, _now: float) -> Position:
        return self._position


class LinearPath:
    """Piecewise-linear movement through timestamped waypoints.

    Before the first waypoint the node sits at the first position; after the
    last it sits at the last.  Between waypoints the position interpolates
    linearly, so range crossings happen at well-defined simulated times.
    """

    def __init__(self, waypoints: list[tuple[float, float, float]]) -> None:
        if len(waypoints) < 2:
            raise ConfigurationError("LinearPath needs at least two waypoints")
        times = [w[0] for w in waypoints]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigurationError("waypoint times must strictly increase")
        self._times = times
        self._points = [(float(w[1]), float(w[2])) for w in waypoints]

    def __call__(self, now: float) -> Position:
        if now <= self._times[0]:
            return self._points[0]
        if now >= self._times[-1]:
            return self._points[-1]
        index = bisect_right(self._times, now)
        t0, t1 = self._times[index - 1], self._times[index]
        (x0, y0), (x1, y1) = self._points[index - 1], self._points[index]
        frac = (now - t0) / (t1 - t0)
        return (x0 + (x1 - x0) * frac, y0 + (y1 - y0) * frac)


class WalkAway:
    """The paper's nurse scenario: in place, walk away, walk back.

    The node sits at ``home`` until ``t_leave``, walks out to ``distance``
    metres over ``walk_s`` seconds, waits there, and returns so that it is
    home again at ``t_return``.
    """

    def __init__(self, t_leave: float, t_return: float,
                 distance: float = 100.0, walk_s: float = 5.0,
                 home: Position = (0.0, 0.0)) -> None:
        if t_return <= t_leave:
            raise ConfigurationError("t_return must be after t_leave")
        span = t_return - t_leave
        walk = min(walk_s, span / 2.0)
        hx, hy = home
        if walk >= span / 2.0:
            # No dwell time: walk straight out and straight back.
            self._path = LinearPath([
                (t_leave, hx, hy),
                (t_leave + span / 2.0, hx + distance, hy),
                (t_return, hx, hy),
            ])
        else:
            self._path = LinearPath([
                (t_leave, hx, hy),
                (t_leave + walk, hx + distance, hy),
                (t_return - walk, hx + distance, hy),
                (t_return, hx, hy),
            ])

    def __call__(self, now: float) -> Position:
        return self._path(now)
