"""Event-driven scheduling kernel.

Two schedulers share one interface:

* :class:`Simulator` runs callbacks in *virtual* time.  It is completely
  deterministic: ties are broken by scheduling order, and no wall-clock time
  passes while it runs.  All unit tests and all benchmark experiments use it.

* :class:`RealtimeScheduler` runs the same callbacks against the wall clock
  and polls readable file descriptors (used by the UDP transport), so the
  identical protocol code can run on a real network.

Nothing in the protocol stack ever calls ``time.time()`` or ``sleep``
directly; components receive a scheduler and use ``now()`` / ``call_later``.
That discipline is what makes the delivery-semantics tests reproducible.
"""

from __future__ import annotations

import heapq
import itertools
import selectors
import time
from typing import Any, Callable, Protocol

from repro.errors import SimulationError


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    Timers compare by (deadline, sequence) so the simulator's heap is stable
    and deterministic.
    """

    __slots__ = ("deadline", "seq", "callback", "args", "cancelled")

    def __init__(self, deadline: float, seq: int,
                 callback: Callable[..., None], args: tuple) -> None:
        self.deadline = deadline
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Timer") -> bool:
        return (self.deadline, self.seq) < (other.deadline, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<Timer t={self.deadline:.6f} seq={self.seq} {state}>"


class Scheduler(Protocol):
    """The time/callback interface every component is written against."""

    def now(self) -> float:
        """Current time in seconds (virtual or wall-clock)."""
        ...

    def call_at(self, when: float, callback: Callable[..., None],
                *args: Any) -> Timer:
        """Run ``callback(*args)`` at absolute time ``when``."""
        ...

    def call_later(self, delay: float, callback: Callable[..., None],
                   *args: Any) -> Timer:
        """Run ``callback(*args)`` after ``delay`` seconds."""
        ...

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Timer:
        """Run ``callback(*args)`` as soon as possible, preserving order."""
        ...


class Simulator:
    """Deterministic virtual-time scheduler.

    Events fire in (time, scheduling-order) order.  ``run()`` variants
    advance the clock; scheduling never does.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: list[Timer] = []
        self._seq = itertools.count()
        self._running = False
        self.events_processed = 0

    def now(self) -> float:
        return self._now

    def call_at(self, when: float, callback: Callable[..., None],
                *args: Any) -> Timer:
        if when < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule at {when:.6f}, current time is {self._now:.6f}")
        timer = Timer(max(when, self._now), next(self._seq), callback, args)
        heapq.heappush(self._queue, timer)
        return timer

    def call_later(self, delay: float, callback: Callable[..., None],
                   *args: Any) -> Timer:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Timer:
        return self.call_at(self._now, callback, *args)

    def every(self, interval: float, callback: Callable[..., None],
              *args: Any) -> "PeriodicTimer":
        """Run ``callback`` every ``interval`` seconds until cancelled."""
        return PeriodicTimer(self, interval, callback, args)

    # -- execution -----------------------------------------------------

    def step(self) -> bool:
        """Run the single earliest pending event.

        Returns False when the queue is empty (after discarding cancelled
        timers), True if an event ran.
        """
        while self._queue:
            timer = heapq.heappop(self._queue)
            if timer.cancelled:
                continue
            self._now = timer.deadline
            self.events_processed += 1
            timer.callback(*timer.args)
            return True
        return False

    def run(self, until: float) -> None:
        """Run all events with deadline <= ``until``, then set now=until."""
        if until < self._now:
            raise SimulationError(
                f"cannot run backwards to {until:.6f} from {self._now:.6f}")
        while self._queue:
            head = self._peek()
            if head is None or head.deadline > until:
                break
            self.step()
        self._now = until

    def run_until_idle(self, max_time: float | None = None,
                       max_events: int | None = None) -> None:
        """Run until no events remain (or a safety bound is hit).

        ``max_time``/``max_events`` guard against protocol bugs that generate
        unbounded timer chains (e.g. a retransmit loop); hitting a bound
        raises so the bug is visible rather than hanging a test.
        """
        processed = 0
        while True:
            head = self._peek()
            if head is None:
                return
            if max_time is not None and head.deadline > max_time:
                raise SimulationError(
                    f"simulation still active past max_time={max_time}")
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"simulation still active after {max_events} events")
            self.step()
            processed += 1

    def pending_count(self) -> int:
        """Number of live (non-cancelled) timers in the queue."""
        return sum(1 for t in self._queue if not t.cancelled)

    def _peek(self) -> Timer | None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None


class PeriodicTimer:
    """Repeats a callback at a fixed interval on any scheduler."""

    def __init__(self, scheduler: Scheduler, interval: float,
                 callback: Callable[..., None], args: tuple) -> None:
        if interval <= 0:
            raise SimulationError(f"periodic interval must be > 0, got {interval}")
        self._scheduler = scheduler
        self._interval = interval
        self._callback = callback
        self._args = args
        self._cancelled = False
        self._timer = scheduler.call_later(interval, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        # Re-arm before invoking so a callback that raises does not silently
        # kill the periodic schedule.
        self._timer = self._scheduler.call_later(self._interval, self._fire)
        self._callback(*self._args)

    def cancel(self) -> None:
        self._cancelled = True
        self._timer.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Pollable(Protocol):
    """A file-descriptor source the realtime scheduler polls for reads."""

    def fileno(self) -> int: ...

    def on_readable(self) -> None: ...


class RealtimeScheduler:
    """Wall-clock scheduler with fd polling, for real UDP deployments.

    The run loop interleaves timer dispatch with ``select`` on registered
    pollables (UDP sockets).  It exists so integration tests can exercise the
    true network path; simulations should prefer :class:`Simulator`.
    """

    def __init__(self) -> None:
        self._queue: list[Timer] = []
        self._seq = itertools.count()
        self._selector = selectors.DefaultSelector()
        self._pollables: dict[int, Pollable] = {}
        # fd recorded at registration time, keyed by pollable identity:
        # a closed socket reports fileno() == -1, so unregistration after
        # close must not re-ask the pollable for its fd.
        self._registered_fds: dict[int, int] = {}
        self._stopped = False

    def now(self) -> float:
        return time.monotonic()

    def call_at(self, when: float, callback: Callable[..., None],
                *args: Any) -> Timer:
        timer = Timer(when, next(self._seq), callback, args)
        heapq.heappush(self._queue, timer)
        return timer

    def call_later(self, delay: float, callback: Callable[..., None],
                   *args: Any) -> Timer:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self.now() + delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Timer:
        return self.call_at(self.now(), callback, *args)

    def every(self, interval: float, callback: Callable[..., None],
              *args: Any) -> PeriodicTimer:
        return PeriodicTimer(self, interval, callback, args)

    def register_pollable(self, pollable: Pollable) -> None:
        fd = pollable.fileno()
        self._selector.register(fd, selectors.EVENT_READ, pollable)
        self._pollables[fd] = pollable
        self._registered_fds[id(pollable)] = fd

    def register_pollables(self, pollables: "list[Pollable]") -> None:
        """Register every pollable of a multi-socket source (e.g. a
        UdpTransport's unicast *and* broadcast sockets)."""
        for pollable in pollables:
            self.register_pollable(pollable)

    def unregister_pollable(self, pollable: Pollable) -> None:
        fd = self._registered_fds.pop(id(pollable), None)
        if fd is None:
            fd = pollable.fileno()
        if fd in self._pollables:
            self._selector.unregister(fd)
            del self._pollables[fd]

    def pollable_count(self) -> int:
        """Registered fd sources (observability for the server layer)."""
        return len(self._pollables)

    def stop(self) -> None:
        """Make ``run_for``/``run_until_idle`` return at the next iteration."""
        self._stopped = True

    def run_for(self, duration: float) -> None:
        """Drive timers and socket reads for ``duration`` wall-clock seconds."""
        self._stopped = False
        deadline = self.now() + duration
        while not self._stopped:
            now = self.now()
            if now >= deadline:
                return
            timeout = self._dispatch_due(now, deadline)
            if self._pollables:
                for key, _ in self._selector.select(timeout):
                    key.data.on_readable()
            else:
                time.sleep(timeout)

    def _dispatch_due(self, now: float, deadline: float) -> float:
        """Run due timers; return how long the loop may block."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.deadline > now:
                return max(0.0, min(head.deadline - now, deadline - now, 0.05))
            heapq.heappop(self._queue)
            head.callback(*head.args)
            now = self.now()
        return max(0.0, min(deadline - now, 0.05))
