"""Deterministic named random streams.

A simulation draws randomness for several independent purposes (link jitter,
packet loss, sensor waveforms, mobility).  If they all shared one generator,
adding a draw in one subsystem would perturb every other subsystem and break
regression baselines.  ``RngRegistry`` hands each purpose its own
``random.Random`` seeded from ``(master_seed, stream name)``, so streams are
independent and individually reproducible.
"""

from __future__ import annotations

import random
import zlib


class RngRegistry:
    """Factory for named, independently-seeded random streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same (seed, name) pair always yields the same sequence.
        """
        rng = self._streams.get(name)
        if rng is None:
            derived = (self._seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8")))
            rng = random.Random(derived & 0xFFFFFFFFFFFF)
            self._streams[name] = rng
        return rng

    def fork(self, salt: str) -> "RngRegistry":
        """Derive an independent registry (e.g. one per simulated run)."""
        derived = (self._seed * 0x85EBCA77 + zlib.crc32(salt.encode("utf-8")))
        return RngRegistry(derived & 0xFFFFFFFFFFFF)
