"""Seeded fault injection: the chaos half of the testbed.

A :class:`FaultPlan` is a deterministic schedule of failures — crashes,
freezes, partitions, link flaps, datagram corruption — compiled onto any
:class:`~repro.sim.kernel.Scheduler` before (or while) the scenario runs.
The same (seed, schedule) pair always injects the same faults at the same
instants, so a chaos soak that finds a bug is a reproduction recipe, not
an anecdote.

The plan itself is backend-agnostic: it schedules callables and keeps an
audit log.  Two injector backends adapt it to the transports the repo
actually has:

* :class:`HubFaults` wraps an :class:`~repro.transport.inmem.InMemoryHub`
  with a composable drop filter — node kill/revive, bidirectional
  partitions, one-way blocks, and probabilistic delay/duplicate/corrupt
  mangles per link.  Corrupted copies are re-injected through
  :meth:`~repro.transport.inmem.InMemoryHub.inject` and die at the
  packet layer's CRC check, exactly like a real flipped bit.
* :class:`SimNetworkFaults` drives the radio model
  (:class:`~repro.sim.radio.SimNetwork`): battery death and
  administrative link blocks; loss/duplication/latency already live in
  the medium's :class:`~repro.sim.radio.LinkProfile`.

Deployment-mode faults (SIGKILLing a match worker, crashing a
:class:`~repro.deploy.harness.LoopbackDevice`) are plain callables the
plan can schedule on a :class:`~repro.sim.kernel.RealtimeScheduler` —
see ``tests/integration/test_chaos.py`` for both styles in use.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.kernel import Scheduler
from repro.sim.radio import SimNetwork
from repro.sim.rng import RngRegistry
from repro.transport.inmem import InMemoryHub


class HubFaults:
    """Fault injector over an in-memory hub.

    Installs itself as the hub's ``drop_filter``, chaining any filter a
    test already set (the prior filter runs first; its drops stand).
    """

    def __init__(self, hub: InMemoryHub, rng_seed: int = 0) -> None:
        self.hub = hub
        self._rng = RngRegistry(rng_seed).stream("hub-faults")
        self._dead: set[str] = set()
        self._partitions: set[frozenset[str]] = set()
        self._one_way_blocks: set[tuple[str, str]] = set()
        #: (corrupt_rate, duplicate_rate, delay_s) per unordered pair.
        self._mangles: dict[frozenset[str], tuple[float, float, float]] = {}
        self._prior = hub.drop_filter
        hub.drop_filter = self._filter
        self.injected = 0

    # -- node faults ---------------------------------------------------------

    def kill(self, node: str) -> None:
        """Drop every datagram to and from ``node`` (crash/power-off)."""
        self._dead.add(node)

    def revive(self, node: str) -> None:
        self._dead.discard(node)

    # -- link faults ---------------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Block the pair in both directions."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitions.discard(frozenset((a, b)))

    def block_one_way(self, src: str, dest: str) -> None:
        """Block only ``src -> dest`` (asymmetric outage: ACKs still flow)."""
        self._one_way_blocks.add((src, dest))

    def unblock_one_way(self, src: str, dest: str) -> None:
        self._one_way_blocks.discard((src, dest))

    def mangle(self, a: str, b: str, *, corrupt_rate: float = 0.0,
               duplicate_rate: float = 0.0, delay_s: float = 0.0) -> None:
        """Probabilistically corrupt/duplicate/delay the pair's datagrams."""
        for rate in (corrupt_rate, duplicate_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate must be in [0, 1], got {rate}")
        if delay_s < 0:
            raise ValueError(f"negative delay: {delay_s}")
        self._mangles[frozenset((a, b))] = (corrupt_rate, duplicate_rate,
                                            delay_s)

    def clear_mangle(self, a: str, b: str) -> None:
        self._mangles.pop(frozenset((a, b)), None)

    # -- the filter ----------------------------------------------------------

    def _filter(self, src: str, dest: str, payload: bytes) -> bool:
        if self._prior is not None and not self._prior(src, dest, payload):
            return False
        if src in self._dead or dest in self._dead:
            return False
        if (src, dest) in self._one_way_blocks:
            return False
        pair = frozenset((src, dest))
        if pair in self._partitions:
            return False
        mangle = self._mangles.get(pair)
        if mangle is None:
            return True
        corrupt_rate, duplicate_rate, delay_s = mangle
        if corrupt_rate and self._rng.random() < corrupt_rate:
            # Flip one byte and re-inject: the CRC check drops it at the
            # receiver, so corruption degrades to loss — the property the
            # packet layer promises and the soak verifies.
            mutated = bytearray(payload)
            index = self._rng.randrange(len(mutated)) if mutated else 0
            if mutated:
                mutated[index] ^= 0xFF
            self.hub.inject(src, dest, bytes(mutated))
            self.injected += 1
            return False
        if duplicate_rate and self._rng.random() < duplicate_rate:
            self.hub.inject(src, dest, payload)
            self.injected += 1
        if delay_s:
            self.hub.scheduler.call_later(delay_s, self.hub.inject,
                                          src, dest, payload)
            self.injected += 1
            return False
        return True

    def uninstall(self) -> None:
        """Restore the hub's previous drop filter."""
        self.hub.drop_filter = self._prior


class SimNetworkFaults:
    """Fault injector over the radio model (:class:`SimNetwork`)."""

    def __init__(self, network: SimNetwork) -> None:
        self.network = network

    def kill(self, node: str) -> None:
        self.network.set_node_up(node, False)

    def revive(self, node: str) -> None:
        self.network.set_node_up(node, True)

    def partition(self, a: str, b: str) -> None:
        self.network.set_link_blocked(a, b, True)

    def heal(self, a: str, b: str) -> None:
        self.network.set_link_blocked(a, b, False)


class FaultPlan:
    """A deterministic, auditable schedule of fault injections.

    Sugar methods take an *injector* (anything with the matching
    ``kill``/``revive``/``partition``/``heal`` methods — either backend
    above) so one plan can drive hub tests and radio tests alike;
    :meth:`at` schedules arbitrary callables for everything else
    (SIGKILL, device crash, drain kicks).
    """

    def __init__(self, scheduler: Scheduler, seed: int = 0) -> None:
        self.scheduler = scheduler
        self.rng = RngRegistry(seed).stream("fault-plan")
        #: Every scheduled action as ``(when, description)``, in schedule
        #: order — the reproduction recipe a failing soak prints.
        self.log: list[tuple[float, str]] = []

    def at(self, when: float, description: str,
           action: Callable[[], None]) -> None:
        """Run ``action`` at absolute time ``when`` and log it."""
        self.log.append((when, description))
        self.scheduler.call_at(when, action)

    def jittered(self, when: float, spread_s: float) -> float:
        """A seeded instant in ``[when, when + spread_s)`` — desynchronise
        faults from protocol timers so phase-locked schedules don't hide
        races."""
        return when + self.rng.random() * spread_s

    # -- sugar over an injector ---------------------------------------------

    def crash(self, when: float, injector, node: str) -> None:
        self.at(when, f"crash {node}", lambda: injector.kill(node))

    def freeze(self, when: float, injector, node: str, for_s: float) -> None:
        """Node silent for a window, then back (GC pause, sleep mode)."""
        self.at(when, f"freeze {node} for {for_s}s",
                lambda: injector.kill(node))
        self.at(when + for_s, f"thaw {node}",
                lambda: injector.revive(node))

    def partition_window(self, when: float, injector, a: str, b: str,
                         for_s: float) -> None:
        self.at(when, f"partition {a}|{b} for {for_s}s",
                lambda: injector.partition(a, b))
        self.at(when + for_s, f"heal {a}|{b}",
                lambda: injector.heal(a, b))

    def flap(self, when: float, injector, a: str, b: str,
             period_s: float, cycles: int) -> None:
        """Alternate the link down/up ``cycles`` times (doorway walker)."""
        for cycle in range(cycles):
            start = when + cycle * 2 * period_s
            self.partition_window(start, injector, a, b, period_s)
