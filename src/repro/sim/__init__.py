"""Discrete-event simulation substrate.

The paper evaluated its prototype on an iPAQ PDA and a laptop joined by a
USB-IP link.  We do not have that hardware, so the entire stack runs over a
deterministic virtual-time kernel instead: :class:`~repro.sim.kernel.Simulator`
drives timers and packet deliveries, :mod:`repro.sim.hosts` charges virtual
CPU time for packet handling and data copying (the costs the paper identifies
as dominating its measurements), and :mod:`repro.sim.radio` models the links
(USB-IP, Bluetooth, ZigBee, WiFi) including range and loss for wireless media.

The same protocol code also runs in real time over UDP via
:class:`~repro.sim.kernel.RealtimeScheduler`; the simulation kernel exists so
tests and benchmarks are reproducible.
"""

from repro.sim.kernel import RealtimeScheduler, Scheduler, Simulator, Timer
from repro.sim.hosts import (
    LAPTOP_PROFILE,
    PDA_PROFILE,
    SENSOR_PROFILE,
    HostProfile,
    NullCostMeter,
    SimHost,
)
from repro.sim.radio import (
    BLUETOOTH,
    USB_IP,
    WIFI_11B,
    ZIGBEE,
    LinkProfile,
    Medium,
    SimNetwork,
)
from repro.sim.mobility import LinearPath, StaticPosition, WalkAway
from repro.sim.rng import RngRegistry

__all__ = [
    "Scheduler",
    "Simulator",
    "RealtimeScheduler",
    "Timer",
    "HostProfile",
    "SimHost",
    "NullCostMeter",
    "PDA_PROFILE",
    "LAPTOP_PROFILE",
    "SENSOR_PROFILE",
    "LinkProfile",
    "Medium",
    "SimNetwork",
    "USB_IP",
    "BLUETOOTH",
    "ZIGBEE",
    "WIFI_11B",
    "StaticPosition",
    "LinearPath",
    "WalkAway",
    "RngRegistry",
]
