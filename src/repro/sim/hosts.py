"""Host CPU cost models.

The paper attributes most of its measured response time not to the link (a
1.5 ms USB-IP hop) but to "the behaviour of the operating system at each
host, and also of the JVM at each host" and to "copying of packet data"
(Section V).  To reproduce those curves without the 2006 hardware, every
simulated host carries a :class:`HostProfile` charging virtual CPU time
along two distinct per-byte paths — the distinction the paper's own numbers
force:

* ``per_byte_s`` — the *kernel/stack* copy cost paid by every datagram.
  The paper's raw link sustains ~575 KB/s (≈1.7 µs/B end to end), so this
  path is cheap.
* ``sw_byte_s`` — the *runtime* copy cost paid when the bus software
  handles event payloads (socket buffer → JVM, codec passes, queue copies,
  and — for the Siena engine — type translation).  The paper's Figure 4(a)
  shows ~100 µs/B end-to-end through the bus on the same link, two orders
  of magnitude above the raw path; that gap **is** the measurement the
  paper reports, and it lives here.
* ``per_packet_s`` — fixed cost to move one datagram through the host
  (syscall, scheduling, runtime crossing).
* ``match_base_s`` — fixed per-event cost of invoking the matching engine.

Components report work through the :class:`CostMeter` interface and never
look at the clock; under simulation the meter serialises the work on the
host's CPU (bursts queue, as they would on the iPAQ), and outside
simulation the meter is a no-op because the real CPU pays the real cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.kernel import Scheduler

#: Copies the bus software performs on each inbound event payload.  Since
#: the zero-copy wire path (PR 5) the decode pass slices ``memoryview``\ s
#: of the datagram instead of materialising per-frame/per-value copies,
#: so only the socket-buffer -> runtime handoff remains (it was 2 when
#: the TLV decode copied every layer).
INBOUND_COPIES = 1
#: Copies on each outbound event payload.  Scatter-gather framing joins
#: the encode -> frame -> batch chunk stack exactly once at the
#: reliable-payload boundary, so only that runtime -> socket join remains
#: (it was 2 when every layer concatenated).
OUTBOUND_COPIES = 1


@dataclass(frozen=True)
class HostProfile:
    """Virtual CPU cost constants for one class of machine."""

    name: str
    per_packet_s: float
    per_byte_s: float
    sw_byte_s: float
    match_base_s: float

    def __post_init__(self) -> None:
        for field in ("per_packet_s", "per_byte_s", "sw_byte_s",
                      "match_base_s"):
            if getattr(self, field) < 0:
                raise ConfigurationError(f"{self.name}: {field} must be >= 0")

    def packet_cost(self, nbytes: int) -> float:
        """CPU seconds to push one ``nbytes`` datagram through the stack."""
        return self.per_packet_s + nbytes * self.per_byte_s

    def copy_cost(self, nbytes: int) -> float:
        """CPU seconds for the runtime to copy ``nbytes`` of payload."""
        return nbytes * self.sw_byte_s


# Calibration notes: constants are tuned so the simulated USB-IP testbed
# reproduces the paper's three quoted link numbers (1.5 ms mean latency,
# 0.6-2.3 ms spread, ~575 KB/s raw bulk throughput) and the *shape* of
# Figure 4 (response time rising roughly linearly with payload; the
# translation-free bus beating the Siena-based bus).  EXPERIMENTS.md records
# the measured values next to the paper's.

#: iPAQ hx4700 running Blackdown JVM 1.3.1 — slow syscalls, very slow
#: runtime copies, and a large fixed per-event cost in the bus software
#: (allocation-heavy JVM path; this is what keeps the paper's Figure 4(b)
#: curves still climbing at 3000 B instead of saturating early).
PDA_PROFILE = HostProfile(name="pda", per_packet_s=1.5e-3,
                          per_byte_s=0.7e-6, sw_byte_s=9.5e-6,
                          match_base_s=4.0e-2)

#: 1.2 GHz Pentium 3 laptop, 256 MB RAM.
LAPTOP_PROFILE = HostProfile(name="laptop", per_packet_s=2.5e-4,
                             per_byte_s=0.2e-6, sw_byte_s=0.6e-6,
                             match_base_s=5.0e-5)

#: A microcontroller-class sensor node (used in BAN scenarios).
SENSOR_PROFILE = HostProfile(name="sensor", per_packet_s=2.0e-3,
                             per_byte_s=2.0e-6, sw_byte_s=5.0e-6,
                             match_base_s=0.0)


class CostMeter:
    """Interface through which protocol code reports work it performed."""

    def charge_seconds(self, seconds: float) -> None:
        raise NotImplementedError

    def charge_copy(self, nbytes: int) -> None:
        raise NotImplementedError

    def charge_packet(self, nbytes: int) -> None:
        raise NotImplementedError

    def charge_match(self) -> None:
        raise NotImplementedError


class NullCostMeter(CostMeter):
    """Meter used outside simulation: work costs nothing extra."""

    def charge_seconds(self, seconds: float) -> None:
        pass

    def charge_copy(self, nbytes: int) -> None:
        pass

    def charge_packet(self, nbytes: int) -> None:
        pass

    def charge_match(self) -> None:
        pass


class SimHost(CostMeter):
    """A machine in the simulated testbed.

    The host serialises CPU work: ``occupy`` advances a ``busy_until``
    watermark, and anything the host sends or delivers is delayed until the
    CPU is free.  This produces realistic queueing when several packets or
    events arrive back-to-back.
    """

    def __init__(self, scheduler: Scheduler, profile: HostProfile,
                 name: str) -> None:
        self.scheduler = scheduler
        self.profile = profile
        self.name = name
        self._busy_until = scheduler.now()
        self.cpu_seconds_used = 0.0
        self.packets_handled = 0
        self.bytes_copied = 0
        self.matches_charged = 0

    # -- CostMeter interface -------------------------------------------

    def charge_seconds(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError(f"negative CPU charge: {seconds}")
        self.occupy(seconds)

    def charge_copy(self, nbytes: int) -> None:
        self.bytes_copied += nbytes
        self.occupy(self.profile.copy_cost(nbytes))

    def charge_packet(self, nbytes: int) -> None:
        self.packets_handled += 1
        self.occupy(self.profile.packet_cost(nbytes))

    def charge_match(self) -> None:
        self.matches_charged += 1
        self.occupy(self.profile.match_base_s)

    # -- CPU resource ----------------------------------------------------

    def occupy(self, seconds: float) -> float:
        """Consume ``seconds`` of CPU starting when the CPU is next free.

        Returns the completion time.
        """
        start = max(self.scheduler.now(), self._busy_until)
        self._busy_until = start + seconds
        self.cpu_seconds_used += seconds
        return self._busy_until

    def ready_time(self) -> float:
        """Earliest time new work submitted now could complete."""
        return max(self.scheduler.now(), self._busy_until)

    def run_when_free(self, seconds: float, callback, *args) -> None:
        """Charge ``seconds`` of CPU, then invoke ``callback`` when done."""
        done = self.occupy(seconds)
        self.scheduler.call_at(done, callback, *args)

    def __repr__(self) -> str:
        return f"<SimHost {self.name} profile={self.profile.name}>"
