"""Link and medium models for the simulated testbed.

A :class:`LinkProfile` captures the characteristics of one kind of link:
propagation latency (with jitter), serialisation bandwidth, datagram loss
probability, MTU (payloads larger than the MTU are fragmented, and each
fragment pays the per-packet host cost — this is why large payloads rise
superlinearly in Figure 4(a)), and radio range for wireless media.

A :class:`Medium` is a broadcast domain: every node attached to it can
unicast to or broadcast at every other node that is *in range*.  Wired media
(USB-IP) ignore range.  A :class:`SimNetwork` owns the media, the node
registry and the packet delivery machinery.

Profiles mirror the paper's testbed and its future-work targets:

* ``USB_IP`` — the PDA-laptop link: 1.5 ms mean latency, 0.6–2.3 ms spread,
  bandwidth calibrated so raw bulk transfer sustains ~575 KB/s (Section V).
* ``BLUETOOTH`` / ``ZIGBEE`` / ``WIFI_11B`` — the wireless targets of
  Section VI, with range limits so mobility can carry nodes out of the cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import AddressError, ConfigurationError, TransportError
from repro.sim.hosts import SimHost
from repro.sim.kernel import Scheduler
from repro.sim.rng import RngRegistry

Position = tuple[float, float]
PositionFn = Callable[[float], Position]


@dataclass(frozen=True)
class LinkProfile:
    """Static characteristics of one kind of network link."""

    name: str
    latency_mean_s: float
    latency_min_s: float
    latency_max_s: float
    bandwidth_bps: float        # bytes per second of serialisation
    loss_rate: float = 0.0
    #: Probability a delivered datagram arrives twice (each copy samples
    #: its own latency, so duplicates also reorder) — retransmit-ambiguity
    #: and route-flap behaviour the reliability tests exercise.
    duplicate_rate: float = 0.0
    mtu: int = 1472
    range_m: float | None = None   # None = wired / unlimited

    def __post_init__(self) -> None:
        if not self.latency_min_s <= self.latency_mean_s <= self.latency_max_s:
            raise ConfigurationError(
                f"{self.name}: latency bounds must bracket the mean")
        if self.bandwidth_bps <= 0:
            raise ConfigurationError(f"{self.name}: bandwidth must be > 0")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(f"{self.name}: loss_rate must be in [0, 1)")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ConfigurationError(
                f"{self.name}: duplicate_rate must be in [0, 1)")
        if self.mtu < 64:
            raise ConfigurationError(f"{self.name}: mtu must be >= 64 bytes")

    def sample_latency(self, rng) -> float:
        """Draw a one-way propagation latency.

        A triangular distribution over (min, mean, max) matches the paper's
        report of a 1.5 ms average within a 0.6-2.3 ms band.
        """
        return rng.triangular(self.latency_min_s, self.latency_max_s,
                              self.latency_mean_s)

    def fragments(self, nbytes: int) -> int:
        """Number of datagram fragments a payload of ``nbytes`` needs."""
        return max(1, math.ceil(nbytes / self.mtu))

    def serialisation_time(self, nbytes: int) -> float:
        """Time to clock ``nbytes`` onto the wire."""
        return nbytes / self.bandwidth_bps


#: The paper's PDA-laptop link ("IP connection over a USB cable").
USB_IP = LinkProfile(name="usb_ip", latency_mean_s=1.5e-3,
                     latency_min_s=0.6e-3, latency_max_s=2.3e-3,
                     bandwidth_bps=640_000.0, mtu=1472)

#: Bluetooth 1.2-era personal-area link (Section VI prototype target).
BLUETOOTH = LinkProfile(name="bluetooth", latency_mean_s=25e-3,
                        latency_min_s=15e-3, latency_max_s=60e-3,
                        bandwidth_bps=90_000.0, loss_rate=0.005,
                        mtu=672, range_m=10.0)

#: ZigBee / 802.15.4 (Section VI migration target): 250 kbit/s, tiny MTU.
ZIGBEE = LinkProfile(name="zigbee", latency_mean_s=12e-3,
                     latency_min_s=6e-3, latency_max_s=40e-3,
                     bandwidth_bps=31_250.0, loss_rate=0.01,
                     mtu=102, range_m=30.0)

#: 802.11b, the WiFi the iPAQ could not yet run under Linux (Section IV).
WIFI_11B = LinkProfile(name="wifi_11b", latency_mean_s=2.5e-3,
                       latency_min_s=1.0e-3, latency_max_s=8.0e-3,
                       bandwidth_bps=700_000.0, loss_rate=0.002,
                       mtu=1472, range_m=50.0)


class _Node:
    """Internal record for one attached endpoint."""

    __slots__ = ("name", "host", "medium", "position_fn", "deliver", "up")

    def __init__(self, name: str, host: SimHost, medium: "Medium",
                 position_fn: PositionFn) -> None:
        self.name = name
        self.host = host
        self.medium = medium
        self.position_fn = position_fn
        self.deliver: Callable[[str, bytes], None] | None = None
        self.up = True


class Medium:
    """A broadcast domain sharing one link profile."""

    def __init__(self, name: str, profile: LinkProfile) -> None:
        self.name = name
        self.profile = profile
        self.nodes: dict[str, _Node] = {}

    def in_range(self, a: _Node, b: _Node, now: float) -> bool:
        """True when ``a`` can currently reach ``b`` over this medium."""
        if self.profile.range_m is None:
            return True
        ax, ay = a.position_fn(now)
        bx, by = b.position_fn(now)
        return math.hypot(ax - bx, ay - by) <= self.profile.range_m

    def __repr__(self) -> str:
        return f"<Medium {self.name} profile={self.profile.name} nodes={len(self.nodes)}>"


class SimNetwork:
    """The simulated network: media, nodes, and packet delivery.

    Delivery path for one datagram A→B:

    1. A's host CPU is charged the per-packet send cost (per fragment);
       the packet leaves when the CPU is free.
    2. The link adds serialisation time (bytes/bandwidth) plus a sampled
       propagation latency; each fragment is subject to independent loss.
       Loss of *any* fragment loses the datagram, as with IP fragmentation.
    3. B's host CPU is charged the per-packet receive cost; the payload is
       handed to B's transport when that charge completes.
    """

    def __init__(self, scheduler: Scheduler,
                 rng: RngRegistry | None = None) -> None:
        self.scheduler = scheduler
        self.rng = (rng or RngRegistry(0)).stream("network")
        self._media: dict[str, Medium] = {}
        self._nodes: dict[str, _Node] = {}
        self._blocked: set[frozenset[str]] = set()
        self.datagrams_sent = 0
        self.datagrams_dropped = 0
        self.datagrams_delivered = 0
        self.bytes_delivered = 0
        #: When non-None, every transmitted datagram's sampled propagation
        #: latency is appended here (the link-baseline benchmark's probe).
        self.latency_probe: list[float] | None = None

    # -- topology --------------------------------------------------------

    def add_medium(self, name: str, profile: LinkProfile) -> Medium:
        if name in self._media:
            raise ConfigurationError(f"duplicate medium name: {name}")
        medium = Medium(name, profile)
        self._media[name] = medium
        return medium

    def attach(self, name: str, host: SimHost, medium: Medium,
               position: Position | PositionFn = (0.0, 0.0)) -> None:
        """Attach a named node to a medium at a (possibly moving) position."""
        if name in self._nodes:
            raise ConfigurationError(f"duplicate node name: {name}")
        if callable(position):
            position_fn = position
        else:
            fixed = (float(position[0]), float(position[1]))
            position_fn = lambda _t, _p=fixed: _p  # noqa: E731 - tiny closure
        node = _Node(name, host, medium, position_fn)
        self._nodes[name] = node
        medium.nodes[name] = node

    def set_receiver(self, name: str, deliver: Callable[[str, bytes], None]) -> None:
        """Register the upcall invoked with (src_name, payload bytes)."""
        self._node(name).deliver = deliver

    def set_node_up(self, name: str, up: bool) -> None:
        """Force a node down (battery death) or back up."""
        self._node(name).up = up

    def set_link_blocked(self, a: str, b: str, blocked: bool) -> None:
        """Administratively block/unblock the pair (both directions)."""
        key = frozenset((a, b))
        if blocked:
            self._blocked.add(key)
        else:
            self._blocked.discard(key)

    def set_position_fn(self, name: str, position_fn: PositionFn) -> None:
        self._node(name).position_fn = position_fn

    def node_names(self) -> list[str]:
        return sorted(self._nodes)

    def host_of(self, name: str) -> SimHost:
        return self._node(name).host

    # -- traffic ---------------------------------------------------------

    def send(self, src: str, dest: str, payload: bytes) -> None:
        """Unicast ``payload`` from ``src`` to ``dest`` (best effort)."""
        src_node = self._node(src)
        dest_node = self._node(dest)
        if src_node.medium is not dest_node.medium:
            raise TransportError(
                f"{src} and {dest} are on different media "
                f"({src_node.medium.name} vs {dest_node.medium.name})")
        self._transmit(src_node, dest_node, payload)

    def broadcast(self, src: str, payload: bytes) -> int:
        """Broadcast from ``src`` to every in-range peer on its medium.

        Returns the number of nodes the datagram was launched towards
        (before loss).
        """
        src_node = self._node(src)
        now = self.scheduler.now()
        launched = 0
        # Sorted for determinism: broadcast fan-out order must not depend on
        # dict insertion order of unrelated attach() calls.
        for name in sorted(src_node.medium.nodes):
            if name == src:
                continue
            dest_node = src_node.medium.nodes[name]
            if not src_node.medium.in_range(src_node, dest_node, now):
                continue
            self._transmit(src_node, dest_node, payload, is_broadcast=True,
                           launched_already=launched > 0)
            launched += 1
        return launched

    # -- internals ---------------------------------------------------------

    def _node(self, name: str) -> _Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise AddressError(f"unknown node: {name}") from None

    def _transmit(self, src: _Node, dest: _Node, payload: bytes,
                  is_broadcast: bool = False,
                  launched_already: bool = False) -> None:
        self.datagrams_sent += 1
        now = self.scheduler.now()
        profile = src.medium.profile
        if not src.up or not dest.up:
            self.datagrams_dropped += 1
            return
        if frozenset((src.name, dest.name)) in self._blocked:
            self.datagrams_dropped += 1
            return
        if not src.medium.in_range(src, dest, now):
            self.datagrams_dropped += 1
            return

        nfrags = profile.fragments(len(payload))
        # Sender-side CPU: one charge per fragment.  A broadcast serialises
        # once regardless of fan-out, so only the first launch pays.
        if not (is_broadcast and launched_already):
            for _ in range(nfrags):
                src.host.charge_packet(min(len(payload), profile.mtu))
        departure = src.host.ready_time()

        # Fragment loss: losing any fragment loses the datagram.
        for _ in range(nfrags):
            if profile.loss_rate and self.rng.random() < profile.loss_rate:
                self.datagrams_dropped += 1
                return

        copies = 1
        if (profile.duplicate_rate
                and self.rng.random() < profile.duplicate_rate):
            copies = 2
        for _ in range(copies):
            latency = profile.sample_latency(self.rng)
            if self.latency_probe is not None:
                self.latency_probe.append(latency)
            arrival = (departure + profile.serialisation_time(len(payload))
                       + latency)
            self.scheduler.call_at(arrival, self._arrive, src.name, dest.name,
                                   payload, nfrags)

    def _arrive(self, src_name: str, dest_name: str, payload: bytes,
                nfrags: int) -> None:
        dest = self._nodes.get(dest_name)
        if dest is None or not dest.up or dest.deliver is None:
            self.datagrams_dropped += 1
            return
        profile = dest.medium.profile
        for _ in range(nfrags):
            dest.host.charge_packet(min(len(payload), profile.mtu))
        done = dest.host.ready_time()
        self.datagrams_delivered += 1
        self.bytes_delivered += len(payload)
        self.scheduler.call_at(done, self._deliver_if_up, dest_name,
                               src_name, payload)

    def _deliver_if_up(self, dest_name: str, src_name: str,
                       payload: bytes) -> None:
        dest = self._nodes.get(dest_name)
        if dest is None or not dest.up or dest.deliver is None:
            return
        dest.deliver(src_name, payload)
