"""The swappable matching-engine interface.

The paper wraps its publish/subscribe mechanism in an "EventBus" interface
so the mechanism can be replaced — Siena first, then a dedicated C matcher —
without touching the semantics layered above it.  ``MatchingEngine`` is that
seam: the bus core only ever calls ``subscribe`` / ``unsubscribe`` /
``match``, and every engine (poset-based Siena reproduction, counting-based
forwarding engine, type-based engine) plugs in behind it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

from repro.errors import ConfigurationError, MatchingError, SubscriptionNotFoundError
from repro.matching.filters import Subscription
from repro.transport.wire import Value


class MatchingEngine(ABC):
    """Matches event attribute maps against registered subscriptions."""

    #: Short engine name used in configuration and benchmark labels.
    name: str = "abstract"

    def __init__(self) -> None:
        self._subscriptions: dict[int, Subscription] = {}
        self.events_matched = 0

    # -- registration ----------------------------------------------------

    def subscribe(self, subscription: Subscription) -> None:
        """Register ``subscription``; its id must be unused."""
        if subscription.sub_id in self._subscriptions:
            raise MatchingError(
                f"subscription id {subscription.sub_id} already registered")
        self._subscriptions[subscription.sub_id] = subscription
        self._index(subscription)

    def unsubscribe(self, sub_id: int) -> Subscription:
        """Remove and return the subscription registered under ``sub_id``."""
        try:
            subscription = self._subscriptions.pop(sub_id)
        except KeyError:
            raise SubscriptionNotFoundError(
                f"no subscription with id {sub_id}") from None
        self._deindex(subscription)
        return subscription

    def subscriptions(self) -> list[Subscription]:
        """All registered subscriptions, in id order."""
        return [self._subscriptions[k] for k in sorted(self._subscriptions)]

    def get(self, sub_id: int) -> Subscription | None:
        return self._subscriptions.get(sub_id)

    def __len__(self) -> int:
        return len(self._subscriptions)

    # -- matching ------------------------------------------------------------

    def match(self, attributes: Mapping[str, Value]) -> list[Subscription]:
        """Subscriptions matching ``attributes``, in subscription-id order.

        Deterministic ordering matters: the bus forwards to proxies in this
        order, and tests/benchmarks rely on run-to-run stability.
        """
        self.events_matched += 1
        matched = self._match_ids(attributes)
        return [self._subscriptions[sub_id] for sub_id in sorted(matched)]

    # -- engine hooks ---------------------------------------------------

    @abstractmethod
    def _index(self, subscription: Subscription) -> None:
        """Add ``subscription`` to the engine's internal structures."""

    @abstractmethod
    def _deindex(self, subscription: Subscription) -> None:
        """Remove ``subscription`` from the engine's internal structures."""

    @abstractmethod
    def _match_ids(self, attributes: Mapping[str, Value]) -> set[int]:
        """Ids of subscriptions matching ``attributes``."""


class BruteForceMatcher(MatchingEngine):
    """Reference engine: evaluate every subscription directly.

    Exists as the oracle for property-based equivalence tests; also a fine
    choice for very small subscription sets.
    """

    name = "brute"

    def _index(self, subscription: Subscription) -> None:
        pass

    def _deindex(self, subscription: Subscription) -> None:
        pass

    def _match_ids(self, attributes: Mapping[str, Value]) -> set[int]:
        return {sub.sub_id for sub in self._subscriptions.values()
                if sub.matches(attributes)}


def make_engine(name: str, **kwargs) -> MatchingEngine:
    """Build a matching engine by name.

    Recognised names: ``"siena"`` (translation-costed Siena reproduction,
    the paper's first-generation bus), ``"forwarding"`` (counting algorithm,
    the paper's second-generation "C-based" bus), ``"typed"`` (Section VI
    future work) and ``"brute"`` (reference oracle).
    """
    # Imported here to avoid a cycle: engines subclass MatchingEngine.
    from repro.matching.forwarding import ForwardingMatcher
    from repro.matching.siena import SienaMatcher, SienaTranslationBackend
    from repro.matching.typed import TypedMatcher

    if name == "siena":
        return SienaTranslationBackend(SienaMatcher(), **kwargs)
    if name == "siena-bare":
        if kwargs:
            raise ConfigurationError("siena-bare accepts no options")
        return SienaMatcher()
    if name == "forwarding":
        return ForwardingMatcher(**kwargs)
    if name == "typed":
        return TypedMatcher(**kwargs)
    if name == "brute":
        if kwargs:
            raise ConfigurationError("brute accepts no options")
        return BruteForceMatcher()
    raise ConfigurationError(f"unknown matching engine: {name!r}")
