"""The swappable matching-engine interface.

The paper wraps its publish/subscribe mechanism in an "EventBus" interface
so the mechanism can be replaced — Siena first, then a dedicated C matcher —
without touching the semantics layered above it.  ``MatchingEngine`` is that
seam: the bus core only ever calls ``subscribe`` / ``unsubscribe`` /
``match``, and every engine (poset-based Siena reproduction, counting-based
forwarding engine, type-based engine) plugs in behind it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Mapping, Sequence

from repro.errors import ConfigurationError, MatchingError, SubscriptionNotFoundError
from repro.matching.filters import Subscription
from repro.transport.wire import Value


class AttributeNameIndex:
    """Counting pre-index over constraint *names*.

    Register each candidate (a filter, a poset node, ...) under the set of
    attribute names its constraints require.  At match time,
    :meth:`candidates` counts, per candidate, how many of its required
    names the event carries — exactly the fast-forwarding counting step,
    applied to names instead of full constraints.  Only candidates whose
    every required name is present can possibly match, so engines skip
    evaluating everything else.
    """

    __slots__ = ("_by_name", "_names_of", "_unconstrained")

    def __init__(self) -> None:
        self._by_name: dict[str, set[int]] = {}      # name -> candidate keys
        self._names_of: dict[int, frozenset[str]] = {}
        self._unconstrained: set[int] = set()        # keys needing no names

    def add(self, key: int, names: Iterable[str]) -> None:
        distinct = frozenset(names)
        if not distinct:
            self._unconstrained.add(key)
            return
        self._names_of[key] = distinct
        for name in distinct:
            self._by_name.setdefault(name, set()).add(key)

    def remove(self, key: int) -> None:
        self._unconstrained.discard(key)
        for name in self._names_of.pop(key, ()):
            keyed = self._by_name[name]
            keyed.discard(key)
            if not keyed:
                del self._by_name[name]

    def candidates(self, attr_names: Iterable[str]) -> set[int]:
        """Keys whose every required name appears in ``attr_names``."""
        counts: dict[int, int] = {}
        names_of = self._names_of
        out = set(self._unconstrained)
        for name in attr_names:
            for key in self._by_name.get(name, ()):
                count = counts.get(key, 0) + 1
                counts[key] = count
                if count == len(names_of[key]):
                    out.add(key)
        return out


class MatchingEngine(ABC):
    """Matches event attribute maps against registered subscriptions."""

    #: Short engine name used in configuration and benchmark labels.
    name: str = "abstract"

    def __init__(self) -> None:
        self._subscriptions: dict[int, Subscription] = {}
        self.events_matched = 0

    # -- registration ----------------------------------------------------

    def subscribe(self, subscription: Subscription) -> None:
        """Register ``subscription``; its id must be unused."""
        if subscription.sub_id in self._subscriptions:
            raise MatchingError(
                f"subscription id {subscription.sub_id} already registered")
        self._subscriptions[subscription.sub_id] = subscription
        self._index(subscription)

    def unsubscribe(self, sub_id: int) -> Subscription:
        """Remove and return the subscription registered under ``sub_id``."""
        try:
            subscription = self._subscriptions.pop(sub_id)
        except KeyError:
            raise SubscriptionNotFoundError(
                f"no subscription with id {sub_id}") from None
        self._deindex(subscription)
        return subscription

    def subscriptions(self) -> list[Subscription]:
        """All registered subscriptions, in id order."""
        return [self._subscriptions[k] for k in sorted(self._subscriptions)]

    def get(self, sub_id: int) -> Subscription | None:
        return self._subscriptions.get(sub_id)

    def __len__(self) -> int:
        return len(self._subscriptions)

    # -- matching ------------------------------------------------------------

    def match(self, attributes: Mapping[str, Value]) -> list[Subscription]:
        """Subscriptions matching ``attributes``, in subscription-id order.

        Deterministic ordering matters: the bus forwards to proxies in this
        order, and tests/benchmarks rely on run-to-run stability.
        """
        self.events_matched += 1
        matched = self._match_ids(attributes)
        return [self._subscriptions[sub_id] for sub_id in sorted(matched)]

    def match_batch(self, batch: Sequence[Mapping[str, Value]]
                    ) -> list[list[Subscription]]:
        """Match a batch of events in one call; one result list per event.

        Semantically identical to calling :meth:`match` per event (the
        differential suite enforces this), but engines may override
        :meth:`_match_ids_batch` to amortise per-event work — repeated
        attribute values, index lookups, interpreter overhead — across the
        whole batch.
        """
        subscriptions = self._subscriptions
        return [[subscriptions[sub_id] for sub_id in matched]
                for matched in self.match_batch_ids(batch)]

    def match_batch_ids(self, batch: Sequence[Mapping[str, Value]]
                        ) -> list[list[int]]:
        """Sorted subscription-id lists per event — the id-level batch API.

        The bus's dispatch phase routes on subscription ids alone, so this
        is the entry point :meth:`EventBus.publish_batch` uses: it skips
        materialising :class:`Subscription` objects, and a sharded engine
        (:mod:`repro.core.sharding`) merges its per-shard id sets here
        before any dispatch state is touched.
        """
        self.events_matched += len(batch)
        return [sorted(matched) for matched in self._match_ids_batch(batch)]

    # -- engine hooks ---------------------------------------------------

    @abstractmethod
    def _index(self, subscription: Subscription) -> None:
        """Add ``subscription`` to the engine's internal structures."""

    @abstractmethod
    def _deindex(self, subscription: Subscription) -> None:
        """Remove ``subscription`` from the engine's internal structures."""

    @abstractmethod
    def _match_ids(self, attributes: Mapping[str, Value]) -> set[int]:
        """Ids of subscriptions matching ``attributes``."""

    def _match_ids_batch(self, batch: Sequence[Mapping[str, Value]]
                         ) -> list[set[int]]:
        """Per-event match id sets; engines override to amortise work."""
        return [self._match_ids(attributes) for attributes in batch]


class BruteForceMatcher(MatchingEngine):
    """Reference engine: evaluate every subscription directly.

    Exists as the oracle for property-based equivalence tests; also a fine
    choice for very small subscription sets.
    """

    name = "brute"

    def _index(self, subscription: Subscription) -> None:
        pass

    def _deindex(self, subscription: Subscription) -> None:
        pass

    def _match_ids(self, attributes: Mapping[str, Value]) -> set[int]:
        return {sub.sub_id for sub in self._subscriptions.values()
                if sub.matches(attributes)}


def make_engine(name: str, **kwargs) -> MatchingEngine:
    """Build a matching engine by name.

    Recognised names: ``"siena"`` (translation-costed Siena reproduction,
    the paper's first-generation bus), ``"forwarding"`` (counting algorithm,
    the paper's second-generation "C-based" bus), ``"typed"`` (Section VI
    future work) and ``"brute"`` (reference oracle).
    """
    # Imported here to avoid a cycle: engines subclass MatchingEngine.
    from repro.matching.forwarding import ForwardingMatcher
    from repro.matching.siena import SienaMatcher, SienaTranslationBackend
    from repro.matching.typed import TypedMatcher

    if name == "siena":
        return SienaTranslationBackend(SienaMatcher(), **kwargs)
    if name == "siena-bare":
        if kwargs:
            raise ConfigurationError("siena-bare accepts no options")
        return SienaMatcher()
    if name == "forwarding":
        return ForwardingMatcher(**kwargs)
    if name == "typed":
        return TypedMatcher(**kwargs)
    if name == "brute":
        if kwargs:
            raise ConfigurationError("brute accepts no options")
        return BruteForceMatcher()
    raise ConfigurationError(f"unknown matching engine: {name!r}")
