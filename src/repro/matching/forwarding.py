"""The fast-forwarding (counting) matcher.

This is the algorithm behind the paper's second-generation, "C-based"
event bus: "Our own matching mechanism is based on the basic Siena fast
forwarding algorithm" (Carzaniga & Wolf, *Forwarding in a Content-Based
Network*, SIGCOMM 2003).

The counting algorithm indexes every constraint of every filter by
attribute name and operator.  Matching an event then proceeds
constraint-first rather than filter-first:

1. for each attribute of the event, look up the constraints that value
   satisfies (equality by hash, ordering by binary search over sorted
   threshold arrays, string shapes by scan, EXISTS for free);
2. increment a per-filter counter for each satisfied constraint;
3. a filter whose counter reaches its constraint count is matched, and its
   subscription is selected.

No per-filter evaluation ever touches an attribute the event does not
carry, and — unlike the Siena translation path — the event's attribute map
is matched *natively*, with zero data conversion.  That difference is the
throughput gap of Figure 4.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Mapping

from repro.matching.engine import MatchingEngine
from repro.matching.filters import Kind, Op, Subscription, kind_of
from repro.sim.hosts import CostMeter, NullCostMeter
from repro.transport.wire import Value


class _Thresholds:
    """Sorted (value, fid) pairs for one ordering operator and kind."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: list[tuple[Value, int]] = []

    def add(self, value: Value, fid: int) -> None:
        insort(self.entries, (value, fid), key=lambda e: e[0])

    def remove(self, value: Value, fid: int) -> None:
        # Locate the value run by bisect, then scan it for the fid.
        lo = bisect_left(self.entries, value, key=lambda e: e[0])
        while lo < len(self.entries) and self.entries[lo][0] == value:
            if self.entries[lo][1] == fid:
                del self.entries[lo]
                return
            lo += 1

    def satisfied_by(self, value: Value, op: Op) -> list[int]:
        """Fids of constraints ``attr op threshold`` satisfied by ``value``."""
        entries = self.entries
        if op == Op.LT:        # value < threshold: thresholds > value
            start = bisect_right(entries, value, key=lambda e: e[0])
            return [fid for _, fid in entries[start:]]
        if op == Op.LE:        # thresholds >= value
            start = bisect_left(entries, value, key=lambda e: e[0])
            return [fid for _, fid in entries[start:]]
        if op == Op.GT:        # thresholds < value
            end = bisect_left(entries, value, key=lambda e: e[0])
            return [fid for _, fid in entries[:end]]
        if op == Op.GE:        # thresholds <= value
            end = bisect_right(entries, value, key=lambda e: e[0])
            return [fid for _, fid in entries[:end]]
        raise AssertionError(op)   # pragma: no cover


class _AttrIndex:
    """All constraints that name one attribute."""

    __slots__ = ("eq", "ne", "exists", "order", "strings")

    def __init__(self) -> None:
        # (kind, value) -> fids with an equality constraint on that value.
        self.eq: dict[tuple[Kind, Value], list[int]] = {}
        # (kind, value, fid) triples for NE constraints.
        self.ne: list[tuple[Kind, Value, int]] = []
        self.exists: list[int] = []
        # (op, kind) -> sorted thresholds.
        self.order: dict[tuple[Op, Kind], _Thresholds] = {}
        # (op, operand, fid) for PREFIX/SUFFIX/CONTAINS, scanned linearly.
        self.strings: list[tuple[Op, Value, int]] = []

    def empty(self) -> bool:
        return not (self.eq or self.ne or self.exists or self.order
                    or self.strings)


_ORDER_OPS = frozenset({Op.LT, Op.LE, Op.GT, Op.GE})
_STRING_OPS = frozenset({Op.PREFIX, Op.SUFFIX, Op.CONTAINS})


class ForwardingMatcher(MatchingEngine):
    """Counting-algorithm matcher (the "C-based" engine)."""

    name = "forwarding"

    def __init__(self, meter: CostMeter | None = None) -> None:
        super().__init__()
        self._meter = meter if meter is not None else NullCostMeter()
        self._attr_indexes: dict[str, _AttrIndex] = {}
        self._filter_needs: dict[int, int] = {}     # fid -> constraint count
        self._filter_sub: dict[int, int] = {}       # fid -> subscription id
        self._sub_fids: dict[int, list[int]] = {}   # sub id -> fids
        self._always: set[int] = set()              # fids of empty filters
        self._next_fid = 0
        self.constraints_indexed = 0

    def set_meter(self, meter: CostMeter) -> None:
        self._meter = meter

    # -- registration ----------------------------------------------------

    def _index(self, subscription: Subscription) -> None:
        fids = []
        for filt in subscription.filters:
            fid = self._next_fid
            self._next_fid += 1
            fids.append(fid)
            self._filter_sub[fid] = subscription.sub_id
            self._filter_needs[fid] = len(filt)
            if len(filt) == 0:
                self._always.add(fid)
                continue
            for constraint in filt:
                self._index_constraint(constraint, fid)
                self.constraints_indexed += 1
        self._sub_fids[subscription.sub_id] = fids

    def _index_constraint(self, constraint, fid: int) -> None:
        index = self._attr_indexes.setdefault(constraint.name, _AttrIndex())
        op = constraint.op
        if op == Op.EXISTS:
            index.exists.append(fid)
        elif op == Op.EQ:
            key = (kind_of(constraint.value), constraint.value)
            index.eq.setdefault(key, []).append(fid)
        elif op == Op.NE:
            index.ne.append((kind_of(constraint.value), constraint.value, fid))
        elif op in _ORDER_OPS:
            kind = kind_of(constraint.value)
            thresholds = index.order.setdefault((op, kind), _Thresholds())
            thresholds.add(constraint.value, fid)
        elif op in _STRING_OPS:
            index.strings.append((op, constraint.value, fid))
        else:                                    # pragma: no cover
            raise AssertionError(op)

    def _deindex(self, subscription: Subscription) -> None:
        fids = set(self._sub_fids.pop(subscription.sub_id, ()))
        for fid in fids:
            del self._filter_needs[fid]
            del self._filter_sub[fid]
            self._always.discard(fid)
        for name in list(self._attr_indexes):
            index = self._attr_indexes[name]
            for key in list(index.eq):
                index.eq[key] = [f for f in index.eq[key] if f not in fids]
                if not index.eq[key]:
                    del index.eq[key]
            index.ne = [e for e in index.ne if e[2] not in fids]
            index.exists = [f for f in index.exists if f not in fids]
            index.strings = [e for e in index.strings if e[2] not in fids]
            for okey in list(index.order):
                thresholds = index.order[okey]
                thresholds.entries = [e for e in thresholds.entries
                                      if e[1] not in fids]
                if not thresholds.entries:
                    del index.order[okey]
            if index.empty():
                del self._attr_indexes[name]

    # -- matching ------------------------------------------------------------

    def _match_ids(self, attributes: Mapping[str, Value]) -> set[int]:
        needs = self._filter_needs
        counts: dict[int, int] = {}
        matched: set[int] = set(self._filter_sub[fid] for fid in self._always)

        for name, value in attributes.items():
            index = self._attr_indexes.get(name)
            if index is None:
                continue
            kind = kind_of(value)

            for fid in index.exists:
                self._bump(fid, counts, needs, matched)

            eq_fids = index.eq.get((kind, value))
            if eq_fids:
                for fid in eq_fids:
                    self._bump(fid, counts, needs, matched)

            for ne_kind, operand, fid in index.ne:
                if ne_kind == kind and value != operand:
                    self._bump(fid, counts, needs, matched)

            if index.order:
                for op in _ORDER_OPS:
                    thresholds = index.order.get((op, kind))
                    if thresholds is not None:
                        for fid in thresholds.satisfied_by(value, op):
                            self._bump(fid, counts, needs, matched)

            if index.strings and kind in (Kind.STRING, Kind.BYTES):
                for op, operand, fid in index.strings:
                    if type(operand) is not type(value):
                        continue
                    if op == Op.PREFIX and value.startswith(operand):
                        self._bump(fid, counts, needs, matched)
                    elif op == Op.SUFFIX and value.endswith(operand):
                        self._bump(fid, counts, needs, matched)
                    elif op == Op.CONTAINS and operand in value:
                        self._bump(fid, counts, needs, matched)

        self._meter.charge_match()
        return matched

    def _bump(self, fid: int, counts: dict[int, int], needs: dict[int, int],
              matched: set[int]) -> None:
        count = counts.get(fid, 0) + 1
        counts[fid] = count
        if count == needs[fid]:
            matched.add(self._filter_sub[fid])
