"""The fast-forwarding (counting) matcher.

This is the algorithm behind the paper's second-generation, "C-based"
event bus: "Our own matching mechanism is based on the basic Siena fast
forwarding algorithm" (Carzaniga & Wolf, *Forwarding in a Content-Based
Network*, SIGCOMM 2003).

The counting algorithm indexes every constraint of every filter by
attribute name and operator.  Matching an event then proceeds
constraint-first rather than filter-first:

1. for each attribute of the event, look up the constraints that value
   satisfies (equality by hash, ordering by binary search over sorted
   threshold arrays, string shapes by scan, EXISTS for free);
2. increment a per-filter counter for each satisfied constraint;
3. a filter whose counter reaches its constraint count is matched, and its
   subscription is selected.

No per-filter evaluation ever touches an attribute the event does not
carry, and — unlike the Siena translation path — the event's attribute map
is matched *natively*, with zero data conversion.  That difference is the
throughput gap of Figure 4.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections import Counter
from typing import Mapping, Sequence

from repro.matching.engine import MatchingEngine
from repro.matching.filters import Kind, Op, Subscription, kind_of
from repro.sim.hosts import CostMeter, NullCostMeter
from repro.transport.wire import Value


class _Thresholds:
    """Sorted (value, fid) pairs for one ordering operator and kind."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: list[tuple[Value, int]] = []

    def add(self, value: Value, fid: int) -> None:
        insort(self.entries, (value, fid), key=lambda e: e[0])

    def remove(self, value: Value, fid: int) -> None:
        # Locate the value run by bisect, then scan it for the fid.
        lo = bisect_left(self.entries, value, key=lambda e: e[0])
        while lo < len(self.entries) and self.entries[lo][0] == value:
            if self.entries[lo][1] == fid:
                del self.entries[lo]
                return
            lo += 1

    def satisfied_by(self, value: Value, op: Op) -> list[int]:
        """Fids of constraints ``attr op threshold`` satisfied by ``value``."""
        entries = self.entries
        if op == Op.LT:        # value < threshold: thresholds > value
            start = bisect_right(entries, value, key=lambda e: e[0])
            return [fid for _, fid in entries[start:]]
        if op == Op.LE:        # thresholds >= value
            start = bisect_left(entries, value, key=lambda e: e[0])
            return [fid for _, fid in entries[start:]]
        if op == Op.GT:        # thresholds < value
            end = bisect_left(entries, value, key=lambda e: e[0])
            return [fid for _, fid in entries[:end]]
        if op == Op.GE:        # thresholds <= value
            end = bisect_right(entries, value, key=lambda e: e[0])
            return [fid for _, fid in entries[:end]]
        raise AssertionError(op)   # pragma: no cover


class _AttrIndex:
    """All constraints that name one attribute."""

    __slots__ = ("eq", "ne", "exists", "order", "strings")

    def __init__(self) -> None:
        # (kind, value) -> fids with an equality constraint on that value.
        self.eq: dict[tuple[Kind, Value], list[int]] = {}
        # (kind, value, fid) triples for NE constraints.
        self.ne: list[tuple[Kind, Value, int]] = []
        self.exists: list[int] = []
        # (op, kind) -> sorted thresholds.
        self.order: dict[tuple[Op, Kind], _Thresholds] = {}
        # (op, operand, fid) for PREFIX/SUFFIX/CONTAINS, scanned linearly.
        self.strings: list[tuple[Op, Value, int]] = []

    def empty(self) -> bool:
        return not (self.eq or self.ne or self.exists or self.order
                    or self.strings)


_ORDER_OPS = frozenset({Op.LT, Op.LE, Op.GT, Op.GE})
_STRING_OPS = frozenset({Op.PREFIX, Op.SUFFIX, Op.CONTAINS})


def name_class(filt) -> frozenset[str]:
    """The attribute-name class of a filter: the names it constrains.

    A filter can only match an event that carries *every* name in its
    class, so the class is the unit this engine groups multi-constraint
    filters by on the batch path — and the routing key the sharded bus
    (:mod:`repro.core.sharding`) partitions subscription tables with.
    Single-name and empty filters produce one- and zero-element classes
    through the same function, so they hash consistently everywhere.
    """
    return frozenset(constraint.name for constraint in filt)

#: Cap on the batch path's satisfied-value memo.  High-cardinality
#: attribute streams (timestamps, counters) would otherwise grow the dict
#: for the process lifetime; wholesale reset on overflow keeps the common
#: low-cardinality case fast and the worst case bounded.
_MEMO_MAX_ENTRIES = 65536


class ForwardingMatcher(MatchingEngine):
    """Counting-algorithm matcher (the "C-based" engine)."""

    name = "forwarding"

    def __init__(self, meter: CostMeter | None = None) -> None:
        super().__init__()
        self._meter = meter if meter is not None else NullCostMeter()
        self._attr_indexes: dict[str, _AttrIndex] = {}
        self._filter_needs: dict[int, int] = {}     # fid -> constraint count
        self._filter_sub: dict[int, int] = {}       # fid -> subscription id
        self._sub_fids: dict[int, list[int]] = {}   # sub id -> fids
        self._always: set[int] = set()              # fids of empty filters
        # Dense fid -> subscription id mirror of _filter_sub (fids are
        # sequential), for C-speed list indexing on the batch path.
        self._sub_list: list[int] = []
        # Batch-path structures.  Multi-constraint filters are grouped
        # into *classes* by the set of attribute names they constrain: a
        # filter matches an event iff, for every name in its class, all
        # its constraints on that name are satisfied — so per class the
        # match set is an intersection of per-attribute satisfied sets.
        self._classes: dict[frozenset[str], int] = {}   # names -> class id
        self._class_width: list[int] = []               # cid -> len(names)
        self._fid_class: list[int] = []                 # fid -> cid (-1: n/a)
        # fid -> {name: constraints on that name} for multi filters.
        self._fid_name_needs: list[dict[str, int] | None] = []
        # Memo: (attr name, value type, value) -> (sub ids of satisfied
        # single-constraint filters, {class id: fids with every constraint
        # on this attribute satisfied}).  Event streams repeat attribute
        # values heavily, so one index walk serves many events.  Any
        # registration change invalidates it wholesale.
        self._satisfied_memo: dict[
            tuple, tuple[tuple[int, ...], dict[int, frozenset[int]]]] = {}
        self._next_fid = 0
        self.constraints_indexed = 0
        self.memo_hits = 0
        self.memo_misses = 0

    def set_meter(self, meter: CostMeter) -> None:
        self._meter = meter

    # -- registration ----------------------------------------------------

    def _index(self, subscription: Subscription) -> None:
        self._satisfied_memo.clear()
        fids = []
        for filt in subscription.filters:
            fid = self._next_fid
            self._next_fid += 1
            fids.append(fid)
            self._filter_sub[fid] = subscription.sub_id
            self._filter_needs[fid] = len(filt)
            self._sub_list.append(subscription.sub_id)
            if len(filt) <= 1:
                self._fid_class.append(-1)
                self._fid_name_needs.append(None)
            else:
                name_needs = Counter(c.name for c in filt)
                key = name_class(filt)
                cid = self._classes.get(key)
                if cid is None:
                    cid = len(self._class_width)
                    self._classes[key] = cid
                    self._class_width.append(len(key))
                self._fid_class.append(cid)
                self._fid_name_needs.append(dict(name_needs))
            if len(filt) == 0:
                self._always.add(fid)
                continue
            for constraint in filt:
                self._index_constraint(constraint, fid)
                self.constraints_indexed += 1
        self._sub_fids[subscription.sub_id] = fids

    def _index_constraint(self, constraint, fid: int) -> None:
        index = self._attr_indexes.setdefault(constraint.name, _AttrIndex())
        op = constraint.op
        if op == Op.EXISTS:
            index.exists.append(fid)
        elif op == Op.EQ:
            key = (kind_of(constraint.value), constraint.value)
            index.eq.setdefault(key, []).append(fid)
        elif op == Op.NE:
            index.ne.append((kind_of(constraint.value), constraint.value, fid))
        elif op in _ORDER_OPS:
            kind = kind_of(constraint.value)
            thresholds = index.order.setdefault((op, kind), _Thresholds())
            thresholds.add(constraint.value, fid)
        elif op in _STRING_OPS:
            index.strings.append((op, constraint.value, fid))
        else:                                    # pragma: no cover
            raise AssertionError(op)

    def _deindex(self, subscription: Subscription) -> None:
        self._satisfied_memo.clear()
        fids = set(self._sub_fids.pop(subscription.sub_id, ()))
        for fid in fids:
            del self._filter_needs[fid]
            del self._filter_sub[fid]
            self._sub_list[fid] = -1
            self._fid_class[fid] = -1
            self._fid_name_needs[fid] = None
            self._always.discard(fid)
        for name in list(self._attr_indexes):
            index = self._attr_indexes[name]
            for key in list(index.eq):
                index.eq[key] = [f for f in index.eq[key] if f not in fids]
                if not index.eq[key]:
                    del index.eq[key]
            index.ne = [e for e in index.ne if e[2] not in fids]
            index.exists = [f for f in index.exists if f not in fids]
            index.strings = [e for e in index.strings if e[2] not in fids]
            for okey in list(index.order):
                thresholds = index.order[okey]
                thresholds.entries = [e for e in thresholds.entries
                                      if e[1] not in fids]
                if not thresholds.entries:
                    del index.order[okey]
            if index.empty():
                del self._attr_indexes[name]

    # -- matching ------------------------------------------------------------

    def _match_ids(self, attributes: Mapping[str, Value]) -> set[int]:
        needs = self._filter_needs
        counts: dict[int, int] = {}
        matched: set[int] = set(self._filter_sub[fid] for fid in self._always)

        for name, value in attributes.items():
            index = self._attr_indexes.get(name)
            if index is None:
                continue
            kind = kind_of(value)

            for fid in index.exists:
                self._bump(fid, counts, needs, matched)

            eq_fids = index.eq.get((kind, value))
            if eq_fids:
                for fid in eq_fids:
                    self._bump(fid, counts, needs, matched)

            for ne_kind, operand, fid in index.ne:
                if ne_kind == kind and value != operand:
                    self._bump(fid, counts, needs, matched)

            if index.order:
                for op in _ORDER_OPS:
                    thresholds = index.order.get((op, kind))
                    if thresholds is not None:
                        for fid in thresholds.satisfied_by(value, op):
                            self._bump(fid, counts, needs, matched)

            if index.strings and kind in (Kind.STRING, Kind.BYTES):
                for op, operand, fid in index.strings:
                    if type(operand) is not type(value):
                        continue
                    if op == Op.PREFIX and value.startswith(operand):
                        self._bump(fid, counts, needs, matched)
                    elif op == Op.SUFFIX and value.endswith(operand):
                        self._bump(fid, counts, needs, matched)
                    elif op == Op.CONTAINS and operand in value:
                        self._bump(fid, counts, needs, matched)

        self._meter.charge_match()
        return matched

    def _bump(self, fid: int, counts: dict[int, int], needs: dict[int, int],
              matched: set[int]) -> None:
        count = counts.get(fid, 0) + 1
        counts[fid] = count
        if count == needs[fid]:
            matched.add(self._filter_sub[fid])

    # -- batch matching ---------------------------------------------------

    def _match_ids_batch(self, batch: Sequence[Mapping[str, Value]]
                         ) -> list[set[int]]:
        """Counting algorithm restructured for batches.

        For each distinct ``(name, value)`` the stream carries, the
        constraints that value satisfies are resolved once
        (:meth:`_satisfied_entry`) and memoized: single-constraint filters
        directly as matched subscription ids, multi-constraint filters as
        per-class sets of fully-satisfied-on-this-attribute fids.  Each
        event then reduces to set unions and per-class set intersections —
        all C-speed — instead of a per-constraint Python counting loop.
        """
        memo = self._satisfied_memo
        sub_list = self._sub_list
        class_width = self._class_width
        always_subs = frozenset(self._filter_sub[fid] for fid in self._always)
        results: list[set[int]] = []

        for attributes in batch:
            matched = set(always_subs)
            gathered: dict[int, list[frozenset[int]]] = {}
            for name, value in attributes.items():
                key = (name, value.__class__, value)
                entry = memo.get(key)
                if entry is None:
                    entry = self._satisfied_entry(name, value)
                    if len(memo) >= _MEMO_MAX_ENTRIES:
                        memo.clear()
                    memo[key] = entry
                    self.memo_misses += 1
                else:
                    self.memo_hits += 1
                singles, class_sets = entry
                matched.update(singles)
                for cid, fidset in class_sets.items():
                    sets = gathered.get(cid)
                    if sets is None:
                        gathered[cid] = [fidset]
                    else:
                        sets.append(fidset)
            for cid, sets in gathered.items():
                # A class filter matches iff every one of its names
                # contributed a satisfied set (the event carried them all)
                # and the filter survives their intersection.
                if len(sets) != class_width[cid]:
                    continue
                if len(sets) > 1:
                    sets.sort(key=len)
                    survivors = sets[0]
                    for other in sets[1:]:
                        survivors = survivors & other
                        if not survivors:
                            break
                else:
                    survivors = sets[0]
                for fid in survivors:
                    matched.add(sub_list[fid])
            results.append(matched)
        # match_base_s models the *fixed cost of invoking the engine* (the
        # allocation-heavy JVM path of the paper's testbed); one batch
        # invocation pays it once, which is the batch pipeline's whole
        # point under simulation.
        self._meter.charge_match()
        return results

    def _satisfied_entry(self, name: str, value: Value
                         ) -> tuple[tuple[int, ...], dict[int, frozenset[int]]]:
        """Precompute what one attribute value satisfies.

        Returns ``(single_subs, class_sets)``: subscription ids whose
        single-constraint filters this value satisfies outright, and — per
        multi-constraint class — the fids whose every constraint *on this
        attribute* is satisfied by the value.
        """
        index = self._attr_indexes.get(name)
        if index is None:
            return (), {}
        kind = kind_of(value)
        fids: list[int] = list(index.exists)
        eq_fids = index.eq.get((kind, value))
        if eq_fids:
            fids.extend(eq_fids)
        for ne_kind, operand, fid in index.ne:
            if ne_kind == kind and value != operand:
                fids.append(fid)
        if index.order:
            for op in _ORDER_OPS:
                thresholds = index.order.get((op, kind))
                if thresholds is not None:
                    fids.extend(thresholds.satisfied_by(value, op))
        if index.strings and kind in (Kind.STRING, Kind.BYTES):
            for op, operand, fid in index.strings:
                if type(operand) is not type(value):
                    continue
                if op == Op.PREFIX and value.startswith(operand):
                    fids.append(fid)
                elif op == Op.SUFFIX and value.endswith(operand):
                    fids.append(fid)
                elif op == Op.CONTAINS and operand in value:
                    fids.append(fid)

        needs = self._filter_needs
        filter_sub = self._filter_sub
        fid_class = self._fid_class
        name_needs = self._fid_name_needs
        singles = tuple(filter_sub[fid] for fid in fids if needs[fid] == 1)
        class_sets: dict[int, set[int]] = {}
        for fid, satisfied in Counter(fids).items():
            if needs[fid] == 1:
                continue
            # All of this filter's constraints on this attribute satisfied?
            if satisfied == name_needs[fid][name]:
                class_sets.setdefault(fid_class[fid], set()).add(fid)
        return singles, {cid: frozenset(fidset)
                         for cid, fidset in class_sets.items()}
