"""Content filters and subscriptions.

A :class:`Filter` is a conjunction of attribute :class:`Constraint` s, the
Siena filter model: an event matches when every constraint is satisfied by
the event's attribute values.  A :class:`Subscription` groups one or more
filters (a disjunction) under a subscription id and the subscriber's
service id.

Type discipline follows Siena: a constraint is satisfied only by a value of
a *compatible kind* (numbers with numbers, strings with strings, bytes with
bytes, booleans with booleans).  A constraint on an absent attribute, or on
a value of the wrong kind, is simply unsatisfied — never an error — because
publishers and subscribers evolve independently.

The event *type* is matched as an ordinary reserved attribute named
``"type"``, so content filters can select on it with EQ/PREFIX like any
other attribute; :mod:`repro.matching.typed` specialises this.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Mapping

from repro.errors import CodecError, FilterError
from repro.ids import ServiceId
from repro.transport import wire
from repro.transport.wire import Value

#: Reserved attribute name under which an event's type is matched.
TYPE_ATTR = "type"

#: Sentinel distinguishing "attribute absent" from any real value.
_MISSING = object()


class Op(enum.IntEnum):
    """Constraint operators (the Siena operator set)."""

    EQ = 1
    NE = 2
    LT = 3
    LE = 4
    GT = 5
    GE = 6
    PREFIX = 7
    SUFFIX = 8
    CONTAINS = 9
    EXISTS = 10


_OP_SYMBOLS = {
    "=": Op.EQ, "==": Op.EQ, "!=": Op.NE, "<": Op.LT, "<=": Op.LE,
    ">": Op.GT, ">=": Op.GE, "prefix": Op.PREFIX, "suffix": Op.SUFFIX,
    "contains": Op.CONTAINS, "exists": Op.EXISTS,
}

_ORDER_OPS = frozenset({Op.LT, Op.LE, Op.GT, Op.GE})
_STRING_OPS = frozenset({Op.PREFIX, Op.SUFFIX, Op.CONTAINS})


class Kind(enum.IntEnum):
    """Value kind lattice used for type-compatibility checks."""

    BOOL = 1
    NUMBER = 2
    STRING = 3
    BYTES = 4


def kind_of(value: Value) -> Kind:
    """Classify a wire value.  ``bool`` is its own kind, not a number."""
    if isinstance(value, bool):
        return Kind.BOOL
    if isinstance(value, (int, float)):
        return Kind.NUMBER
    if isinstance(value, str):
        return Kind.STRING
    if isinstance(value, bytes):
        return Kind.BYTES
    raise FilterError(f"unsupported value type: {type(value).__name__}")


class Constraint:
    """One attribute constraint: ``name op value``.

    Immutable and hashable so constraints can key the forwarding engine's
    indexes.
    """

    __slots__ = ("name", "op", "value", "_kind")

    def __init__(self, name: str, op: Op | str, value: Value | None = None) -> None:
        if not name:
            raise FilterError("constraint attribute name must be non-empty")
        if isinstance(op, str):
            try:
                op = _OP_SYMBOLS[op]
            except KeyError:
                raise FilterError(f"unknown operator: {op!r}") from None
        if op == Op.EXISTS:
            if value is not None:
                raise FilterError("EXISTS takes no operand")
            object.__setattr__(self, "_kind", None)
        else:
            if value is None:
                raise FilterError(f"{op.name} requires an operand")
            value_kind = kind_of(value)
            if op in _ORDER_OPS and value_kind not in (Kind.NUMBER, Kind.STRING):
                raise FilterError(
                    f"{op.name} requires a number or string operand, "
                    f"got {type(value).__name__}")
            if op in _STRING_OPS and value_kind not in (Kind.STRING, Kind.BYTES):
                raise FilterError(
                    f"{op.name} requires a string or bytes operand, "
                    f"got {type(value).__name__}")
            object.__setattr__(self, "_kind", value_kind)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "value", value)

    def __setattr__(self, key: str, _value) -> None:
        raise AttributeError(f"Constraint is immutable (tried to set {key!r})")

    @property
    def kind(self) -> Kind | None:
        """Kind of value this constraint can be satisfied by (None = any)."""
        return self._kind

    def compatible(self, actual: Value) -> bool:
        """True when ``actual`` is of a kind this constraint can test."""
        if self.op == Op.EXISTS:
            return True
        return kind_of(actual) == self._kind

    def matches(self, actual: Value) -> bool:
        """Evaluate this constraint against one attribute value."""
        if self.op == Op.EXISTS:
            return True
        if not self.compatible(actual):
            return False
        operand = self.value
        if self.op == Op.EQ:
            return actual == operand
        if self.op == Op.NE:
            return actual != operand
        if self.op == Op.LT:
            return actual < operand
        if self.op == Op.LE:
            return actual <= operand
        if self.op == Op.GT:
            return actual > operand
        if self.op == Op.GE:
            return actual >= operand
        if self.op == Op.PREFIX:
            return actual.startswith(operand)
        if self.op == Op.SUFFIX:
            return actual.endswith(operand)
        if self.op == Op.CONTAINS:
            return operand in actual
        raise FilterError(f"unhandled operator: {self.op}")   # pragma: no cover

    def __eq__(self, other) -> bool:
        return (isinstance(other, Constraint)
                and self.name == other.name and self.op == other.op
                and self.value == other.value
                and type(self.value) is type(other.value))

    def __hash__(self) -> int:
        return hash((self.name, self.op, self.value, type(self.value)))

    def __repr__(self) -> str:
        if self.op == Op.EXISTS:
            return f"Constraint({self.name!r} exists)"
        return f"Constraint({self.name!r} {self.op.name} {self.value!r})"


class Filter:
    """A conjunction of constraints.

    An empty filter matches every event (subscribe-to-all); multiple
    constraints on the same attribute express ranges.
    """

    __slots__ = ("constraints",)

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        constraint_tuple = tuple(constraints)
        for constraint in constraint_tuple:
            if not isinstance(constraint, Constraint):
                raise FilterError(
                    f"Filter takes Constraints, got {type(constraint).__name__}")
        object.__setattr__(self, "constraints", constraint_tuple)

    def __setattr__(self, key: str, _value) -> None:
        raise AttributeError(f"Filter is immutable (tried to set {key!r})")

    @classmethod
    def where(cls, event_type: str | None = None,
              **constraints) -> "Filter":
        """Convenience constructor.

        ``Filter.where("health.hr", hr=(">", 120), patient="p1")`` builds a
        filter on event type ``health.hr`` with ``hr > 120`` and
        ``patient = "p1"``.  Plain values mean equality; a ``(op, operand)``
        tuple selects the operator; the string ``"exists"`` tests presence.
        """
        parts: list[Constraint] = []
        if event_type is not None:
            parts.append(Constraint(TYPE_ATTR, Op.EQ, event_type))
        for name, spec in constraints.items():
            if spec == "exists":
                parts.append(Constraint(name, Op.EXISTS))
            elif isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[0], str):
                parts.append(Constraint(name, spec[0], spec[1]))
            else:
                parts.append(Constraint(name, Op.EQ, spec))
        return cls(parts)

    @classmethod
    def for_type_prefix(cls, prefix: str) -> "Filter":
        """Filter matching every event whose type starts with ``prefix``."""
        return cls([Constraint(TYPE_ATTR, Op.PREFIX, prefix)])

    def matches(self, attributes: Mapping[str, Value]) -> bool:
        """True when every constraint is satisfied by ``attributes``."""
        for constraint in self.constraints:
            actual = attributes.get(constraint.name, _MISSING)
            if actual is _MISSING or not constraint.matches(actual):
                return False
        return True

    def names(self) -> set[str]:
        """Attribute names this filter constrains."""
        return {constraint.name for constraint in self.constraints}

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self.constraints)

    def __eq__(self, other) -> bool:
        return (isinstance(other, Filter)
                and sorted(map(hash, self.constraints))
                == sorted(map(hash, other.constraints))
                and set(self.constraints) == set(other.constraints))

    def __hash__(self) -> int:
        return hash(frozenset(self.constraints))

    def __repr__(self) -> str:
        inner = " AND ".join(repr(c) for c in self.constraints) or "TRUE"
        return f"Filter({inner})"


class Subscription:
    """One or more filters registered under a subscription id.

    An event matches the subscription when it matches *any* of the filters.
    """

    __slots__ = ("sub_id", "subscriber", "filters")

    def __init__(self, sub_id: int, subscriber: ServiceId,
                 filters: Iterable[Filter]) -> None:
        filter_tuple = tuple(filters)
        if not filter_tuple:
            raise FilterError("subscription needs at least one filter")
        if sub_id < 0:
            raise FilterError(f"subscription id must be >= 0, got {sub_id}")
        object.__setattr__(self, "sub_id", sub_id)
        object.__setattr__(self, "subscriber", subscriber)
        object.__setattr__(self, "filters", filter_tuple)

    def __setattr__(self, key: str, _value) -> None:
        raise AttributeError(f"Subscription is immutable (tried to set {key!r})")

    def matches(self, attributes: Mapping[str, Value]) -> bool:
        return any(f.matches(attributes) for f in self.filters)

    def __repr__(self) -> str:
        return (f"Subscription(id={self.sub_id}, subscriber={self.subscriber}, "
                f"filters={len(self.filters)})")


# -- wire codec ------------------------------------------------------------
#
# Same discipline as repro.transport.wire: every encode_X has a write_X
# sibling that appends chunks to a caller-supplied list (the worker-pool
# delta path frames subscriptions inside larger pipe messages) and a
# decode_X inverse.  repro-lint RL004 holds the triples in lockstep.

#: Interned one-byte operator chunks, so the writers never allocate for them.
_OP_BYTES = {op: bytes((int(op),)) for op in Op}


def write_constraint(out: list[bytes], constraint: Constraint) -> None:
    """Append one constraint's wire chunks to ``out`` (no joining)."""
    wire.write_str(out, constraint.name)
    out.append(_OP_BYTES[constraint.op])
    if constraint.op != Op.EXISTS:
        wire.write_value(out, constraint.value)


def encode_constraint(constraint: Constraint) -> bytes:
    out: list[bytes] = []
    write_constraint(out, constraint)
    return b"".join(out)


def decode_constraint(buf: bytes, offset: int = 0) -> tuple[Constraint, int]:
    name, pos = wire.decode_str(buf, offset)
    if pos >= len(buf):
        raise CodecError("truncated constraint: missing operator")
    try:
        op = Op(buf[pos])
    except ValueError:
        raise CodecError(f"unknown operator byte: {buf[pos]}") from None
    pos += 1
    if op == Op.EXISTS:
        return Constraint(name, op), pos
    value, pos = wire.decode_value(buf, pos)
    return Constraint(name, op, value), pos


def write_filter(out: list[bytes], filt: Filter) -> None:
    """Append one filter's wire chunks to ``out`` (no joining)."""
    wire.write_varint(out, len(filt))
    for constraint in filt:
        write_constraint(out, constraint)


def encode_filter(filt: Filter) -> bytes:
    out: list[bytes] = []
    write_filter(out, filt)
    return b"".join(out)


def decode_filter(buf: bytes, offset: int = 0) -> tuple[Filter, int]:
    count, pos = wire.decode_varint(buf, offset)
    constraints = []
    for _ in range(count):
        constraint, pos = decode_constraint(buf, pos)
        constraints.append(constraint)
    return Filter(constraints), pos


def write_subscription(out: list[bytes], subscription: Subscription) -> None:
    """Append one subscription's wire chunks to ``out`` (no joining)."""
    wire.write_varint(out, subscription.sub_id)
    out.append(subscription.subscriber.to_bytes48())
    wire.write_varint(out, len(subscription.filters))
    for filt in subscription.filters:
        write_filter(out, filt)


def encode_subscription(subscription: Subscription) -> bytes:
    out: list[bytes] = []
    write_subscription(out, subscription)
    return b"".join(out)


def decode_subscription(buf: bytes, offset: int = 0) -> tuple[Subscription, int]:
    sub_id, pos = wire.decode_varint(buf, offset)
    if pos + 6 > len(buf):
        raise CodecError("truncated subscription: missing subscriber id")
    subscriber = ServiceId.from_bytes48(buf[pos:pos + 6])
    pos += 6
    count, pos = wire.decode_varint(buf, pos)
    if count == 0:
        raise CodecError("subscription with no filters on wire")
    filters = []
    for _ in range(count):
        filt, pos = decode_filter(buf, pos)
        filters.append(filt)
    return Subscription(sub_id, subscriber, filters), pos
