"""Covering and overlap relations between filters.

*Covering* is Siena's central relation: filter ``f`` covers filter ``g``
when every event matching ``g`` also matches ``f``.  The Siena matcher uses
it to organise subscriptions into a partial order so whole subtrees can be
skipped during matching; SMC federation uses it to aggregate the
subscription set forwarded to a peer cell; quenching uses the companion
*overlap* relation to decide whether any subscriber could possibly be
interested in what a publisher advertises.

The implementations here are **sound but conservative**:

* :func:`constraint_covers` / :func:`filter_covers` never claim covering
  that does not hold, but may miss covering that requires reasoning across
  several constraints jointly (e.g. ``x >= 5 AND x <= 5`` covering
  ``x = 5``).
* :func:`constraints_contradict` / :func:`filters_overlap` never claim a
  contradiction that does not hold, so ``filters_overlap`` may answer True
  for a disjoint pair but never False for an overlapping one — the safe
  direction for quenching (a publisher is only silenced when provably
  nobody listens).

Property-based tests in ``tests/matching/test_covering_properties.py``
check both soundness directions against brute-force evaluation.
"""

from __future__ import annotations

from repro.matching.filters import Constraint, Filter, Kind, Op, Subscription

_ORDER_OPS = frozenset({Op.LT, Op.LE, Op.GT, Op.GE})


def constraint_covers(general: Constraint, specific: Constraint) -> bool:
    """True when every value satisfying ``specific`` satisfies ``general``.

    Both constraints must name the same attribute; otherwise False.
    """
    if general.name != specific.name:
        return False
    if general.op == Op.EXISTS:
        return True
    if specific.op == Op.EXISTS:
        return False          # EXISTS admits values of any kind
    if general.kind != specific.kind:
        return False

    g_op, g_val = general.op, general.value
    s_op, s_val = specific.op, specific.value

    if g_op == Op.EQ:
        return s_op == Op.EQ and s_val == g_val
    if g_op == Op.NE:
        # NE v covers any same-kind constraint that v itself cannot satisfy.
        return not specific.matches(g_val)
    if g_op == Op.LT:
        if s_op == Op.EQ:
            return s_val < g_val
        if s_op == Op.LT:
            return s_val <= g_val
        if s_op == Op.LE:
            return s_val < g_val
        return False
    if g_op == Op.LE:
        if s_op == Op.EQ:
            return s_val <= g_val
        if s_op in (Op.LT, Op.LE):
            return s_val <= g_val
        return False
    if g_op == Op.GT:
        if s_op == Op.EQ:
            return s_val > g_val
        if s_op == Op.GT:
            return s_val >= g_val
        if s_op == Op.GE:
            return s_val > g_val
        return False
    if g_op == Op.GE:
        if s_op == Op.EQ:
            return s_val >= g_val
        if s_op in (Op.GT, Op.GE):
            return s_val >= g_val
        return False
    if g_op == Op.PREFIX:
        if s_op == Op.EQ:
            return s_val.startswith(g_val)
        if s_op == Op.PREFIX:
            return s_val.startswith(g_val)
        return False
    if g_op == Op.SUFFIX:
        if s_op == Op.EQ:
            return s_val.endswith(g_val)
        if s_op == Op.SUFFIX:
            return s_val.endswith(g_val)
        return False
    if g_op == Op.CONTAINS:
        if s_op in (Op.EQ, Op.PREFIX, Op.SUFFIX, Op.CONTAINS):
            return g_val in s_val
        return False
    return False


def filter_covers(general: Filter, specific: Filter) -> bool:
    """True when every event matching ``specific`` matches ``general``.

    Rule: each constraint of the general filter must be covered by at least
    one constraint of the specific filter.  (The empty filter covers
    everything.)
    """
    return all(
        any(constraint_covers(g, s) for s in specific.constraints)
        for g in general.constraints
    )


def subscription_covers(general: Subscription, specific: Subscription) -> bool:
    """True when every event matching ``specific`` matches ``general``.

    A disjunction of filters covers another when every specific filter is
    covered by some general filter.
    """
    return all(
        any(filter_covers(g, s) for g in general.filters)
        for s in specific.filters
    )


def constraints_contradict(a: Constraint, b: Constraint) -> bool:
    """True when no single value can satisfy both constraints.

    Sound: a True answer is a proof of disjointness.  Conservative: may
    answer False for exotic disjoint pairs.
    """
    if a.name != b.name:
        return False
    if a.op == Op.EXISTS or b.op == Op.EXISTS:
        return False
    if a.kind != b.kind:
        return True           # each op only accepts its own kind

    # Equality pins the value: contradiction iff the other side rejects it.
    if a.op == Op.EQ:
        return not b.matches(a.value)
    if b.op == Op.EQ:
        return not a.matches(b.value)

    # Disjoint numeric/string ranges.
    if a.op in _ORDER_OPS and b.op in _ORDER_OPS:
        return _ranges_disjoint(a, b) or _ranges_disjoint(b, a)

    # Incompatible string shapes.
    if a.op == Op.PREFIX and b.op == Op.PREFIX:
        return not (a.value.startswith(b.value) or b.value.startswith(a.value))
    if a.op == Op.SUFFIX and b.op == Op.SUFFIX:
        return not (a.value.endswith(b.value) or b.value.endswith(a.value))
    return False


def _ranges_disjoint(lower: Constraint, upper: Constraint) -> bool:
    """True when ``lower`` bounds from above and ``upper`` from below with
    an empty intersection (e.g. x < 3 vs x > 5)."""
    if lower.op in (Op.LT, Op.LE) and upper.op in (Op.GT, Op.GE):
        if lower.op == Op.LE and upper.op == Op.GE:
            return lower.value < upper.value
        return lower.value <= upper.value
    return False


def filters_overlap(a: Filter, b: Filter) -> bool:
    """Could some event match both filters?

    Returns False only when a pairwise contradiction proves disjointness;
    True otherwise (possibly a false positive — safe for quenching).
    """
    for ca in a.constraints:
        for cb in b.constraints:
            if constraints_contradict(ca, cb):
                return False
    return True


def subscriptions_overlap(a: Subscription, b: Subscription) -> bool:
    """Could some event match both subscriptions?  Conservative like
    :func:`filters_overlap`."""
    return any(filters_overlap(fa, fb) for fa in a.filters for fb in b.filters)
