"""Content-based publish/subscribe matching engines.

The paper's bus places an "EventBus" interface around the matching
mechanism precisely so the mechanism can be swapped — it was prototyped on
Siena and then replaced with a dedicated lightweight matcher based on the
Siena fast-forwarding algorithm.  This package reproduces both generations
behind one :class:`~repro.matching.engine.MatchingEngine` interface:

* :class:`~repro.matching.siena.SienaMatcher` — a subscription-poset
  matcher with Siena's filter semantics and covering relations, plus
  :class:`~repro.matching.siena.SienaTranslationBackend` which reproduces
  the data-translation overhead of embedding a foreign pub/sub engine
  ("translation to or from our own data types", Section V);
* :class:`~repro.matching.forwarding.ForwardingMatcher` — the
  Carzaniga–Wolf counting algorithm the authors' C engine was based on,
  operating natively on our types with zero translation;
* :class:`~repro.matching.typed.TypedMatcher` — the type-based
  publish/subscribe layer the paper names as future work (Section VI).
"""

from repro.matching.covering import (
    constraint_covers,
    constraints_contradict,
    filter_covers,
    filters_overlap,
    subscription_covers,
)
from repro.matching.engine import MatchingEngine, make_engine
from repro.matching.filters import Constraint, Filter, Op, Subscription
from repro.matching.forwarding import ForwardingMatcher
from repro.matching.siena import SienaMatcher, SienaTranslationBackend
from repro.matching.typed import TypedMatcher

__all__ = [
    "Op",
    "Constraint",
    "Filter",
    "Subscription",
    "MatchingEngine",
    "make_engine",
    "SienaMatcher",
    "SienaTranslationBackend",
    "ForwardingMatcher",
    "TypedMatcher",
    "constraint_covers",
    "constraints_contradict",
    "filter_covers",
    "filters_overlap",
    "subscription_covers",
]
