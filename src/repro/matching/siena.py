"""Siena reproduction: poset matcher plus translation-costed backend.

Two classes reproduce the paper's first-generation event bus:

:class:`SienaMatcher`
    A from-scratch matcher with Siena's semantics.  Subscription filters
    are organised into a partial order under the covering relation; at
    match time the engine walks the poset from its roots and *skips the
    entire subtree under any filter that fails to match* (if a covering
    filter rejects an event, everything it covers must reject it too).
    This is Siena's core structural optimisation.

:class:`SienaTranslationBackend`
    The paper used Siena "with an appropriate interface to allow
    translation of Siena subscription/notification types to or from our
    own", and later measured that the Siena-based bus lost throughput to
    "data translations ... including translation to or from our own data
    types".  This backend reproduces that architecture faithfully: every
    subscription and every published event is converted to internal
    Siena-style objects (:class:`SienaNotification`, string-tagged
    :class:`SienaAttributeValue`) before matching and converted back after,
    and the byte volume of each conversion is reported to a
    :class:`~repro.sim.hosts.CostMeter`.  Under simulation this makes the
    Siena bus pay translation time exactly where the real one did; under
    wall-clock benchmarks the conversions themselves are the cost.
"""

from __future__ import annotations

from typing import Mapping

from repro.matching.covering import filter_covers
from repro.matching.engine import AttributeNameIndex, MatchingEngine
from repro.matching.filters import Constraint, Filter, Op, Subscription
from repro.sim.hosts import CostMeter, NullCostMeter
from repro.transport.wire import Value


class _PosetNode:
    """One distinct filter in the subscription poset."""

    __slots__ = ("filter", "parents", "children", "sub_ids")

    def __init__(self, filt: Filter) -> None:
        self.filter = filt
        self.parents: set[int] = set()     # node ids of direct coverers
        self.children: set[int] = set()    # node ids of directly covered
        self.sub_ids: set[int] = set()     # subscriptions carrying this filter


class SienaMatcher(MatchingEngine):
    """Covering-poset matcher with Siena filter semantics."""

    name = "siena-bare"

    def __init__(self) -> None:
        super().__init__()
        self._nodes: dict[int, _PosetNode] = {}
        self._node_by_filter: dict[Filter, int] = {}
        self._roots: set[int] = set()
        # Counting pre-index: a filter naming an attribute the event does
        # not carry cannot match, so its node (and, by covering, its whole
        # subtree) is skipped without evaluating a single constraint.
        self._name_index = AttributeNameIndex()
        self._next_node_id = 0
        self.nodes_visited = 0
        self.subtrees_skipped = 0
        self.name_prefilter_skips = 0

    # -- poset maintenance ----------------------------------------------

    def _index(self, subscription: Subscription) -> None:
        for filt in subscription.filters:
            node_id = self._node_by_filter.get(filt)
            if node_id is None:
                node_id = self._insert_filter(filt)
            self._nodes[node_id].sub_ids.add(subscription.sub_id)

    def _deindex(self, subscription: Subscription) -> None:
        for filt in subscription.filters:
            node_id = self._node_by_filter.get(filt)
            if node_id is None:
                continue
            node = self._nodes[node_id]
            node.sub_ids.discard(subscription.sub_id)
            if not node.sub_ids:
                self._remove_node(node_id)

    def _insert_filter(self, filt: Filter) -> int:
        node_id = self._next_node_id
        self._next_node_id += 1
        node = _PosetNode(filt)
        self._nodes[node_id] = node
        self._node_by_filter[filt] = node_id
        self._name_index.add(node_id, filt.names())

        # Find direct parents (tightest coverers) and children (covered).
        for other_id, other in self._nodes.items():
            if other_id == node_id:
                continue
            if filter_covers(other.filter, filt):
                node.parents.add(other_id)
            elif filter_covers(filt, other.filter):
                node.children.add(other_id)

        # Reduce to *direct* parents: drop any parent that covers another
        # parent (keep the most specific coverers).
        direct_parents = set(node.parents)
        for p in node.parents:
            for q in node.parents:
                if p != q and filter_covers(self._nodes[p].filter,
                                            self._nodes[q].filter):
                    direct_parents.discard(p)
        node.parents = direct_parents

        # Likewise keep only direct children and splice edges.
        direct_children = set(node.children)
        for c in node.children:
            for d in node.children:
                if c != d and filter_covers(self._nodes[d].filter,
                                            self._nodes[c].filter):
                    direct_children.discard(c)
        node.children = direct_children

        for parent_id in node.parents:
            parent = self._nodes[parent_id]
            # The new node may interpose between parent and some children.
            for child_id in node.children:
                if child_id in parent.children:
                    parent.children.discard(child_id)
                    self._nodes[child_id].parents.discard(parent_id)
            parent.children.add(node_id)
        for child_id in node.children:
            child = self._nodes[child_id]
            child.parents.add(node_id)
            self._roots.discard(child_id)

        if not node.parents:
            self._roots.add(node_id)
        return node_id

    def _remove_node(self, node_id: int) -> None:
        node = self._nodes.pop(node_id)
        del self._node_by_filter[node.filter]
        self._roots.discard(node_id)
        self._name_index.remove(node_id)
        for parent_id in node.parents:
            self._nodes[parent_id].children.discard(node_id)
        for child_id in node.children:
            child = self._nodes[child_id]
            child.parents.discard(node_id)
            # Re-attach orphaned children to the removed node's parents
            # where covering still holds.
            for parent_id in node.parents:
                if filter_covers(self._nodes[parent_id].filter, child.filter):
                    child.parents.add(parent_id)
                    self._nodes[parent_id].children.add(child_id)
            if not child.parents:
                self._roots.add(child_id)

    # -- matching ------------------------------------------------------------

    def _match_ids(self, attributes: Mapping[str, Value]) -> set[int]:
        matched: set[int] = set()
        visited: set[int] = set()
        candidates = self._name_index.candidates(attributes.keys())
        stack = sorted(self._roots)
        while stack:
            node_id = stack.pop()
            if node_id in visited:
                continue
            visited.add(node_id)
            node = self._nodes[node_id]
            self.nodes_visited += 1
            if node_id not in candidates:
                # Pre-index: the filter names an attribute the event lacks,
                # so it (and by covering, its subtree) cannot match.
                self.name_prefilter_skips += 1
                self.subtrees_skipped += 1
                continue
            if node.filter.matches(attributes):
                matched.update(node.sub_ids)
                stack.extend(node.children)
            else:
                # Covering guarantee: nothing below this node can match.
                self.subtrees_skipped += 1
        return matched

    def poset_depth(self) -> int:
        """Longest root-to-leaf chain (diagnostic for tests/benchmarks)."""
        depth = 0
        stack = [(node_id, 1) for node_id in self._roots]
        while stack:
            node_id, d = stack.pop()
            depth = max(depth, d)
            stack.extend((c, d + 1) for c in self._nodes[node_id].children)
        return depth


# -- the translation layer ----------------------------------------------------

#: Siena's AttributeValue carried an explicit type tag; reproducing the
#: object shape (tag string + boxed value) is what makes translation cost
#: real work rather than a stopwatch fudge.
_SIENA_TYPE_NAMES = {bool: "bool", int: "long", float: "double",
                     str: "string", bytes: "bytearray"}

_SIENA_OP_NAMES = {Op.EQ: "EQ", Op.NE: "NE", Op.LT: "LT", Op.LE: "LE",
                   Op.GT: "GT", Op.GE: "GE", Op.PREFIX: "PF",
                   Op.SUFFIX: "SF", Op.CONTAINS: "SS", Op.EXISTS: "ANY"}
_SIENA_OP_REVERSE = {v: k for k, v in _SIENA_OP_NAMES.items()}


class SienaAttributeValue:
    """Boxed, type-tagged value in the style of Siena's AttributeValue."""

    __slots__ = ("type_name", "raw")

    def __init__(self, value: Value) -> None:
        self.type_name = _SIENA_TYPE_NAMES[type(value)]
        self.raw = value

    def unbox(self) -> Value:
        return self.raw

    def wire_size(self) -> int:
        raw = self.raw
        if isinstance(raw, (str, bytes)):
            return len(raw) + len(self.type_name) + 2
        return 8 + len(self.type_name) + 2


class SienaNotification:
    """String-keyed map of boxed values, Siena's notification shape."""

    __slots__ = ("attributes",)

    def __init__(self, attributes: dict[str, SienaAttributeValue]) -> None:
        self.attributes = attributes

    @classmethod
    def from_attr_map(cls, attributes: Mapping[str, Value]) -> "SienaNotification":
        return cls({name: SienaAttributeValue(value)
                    for name, value in attributes.items()})

    def to_attr_map(self) -> dict[str, Value]:
        return {name: boxed.unbox() for name, boxed in self.attributes.items()}

    def wire_size(self) -> int:
        return sum(len(name) + boxed.wire_size()
                   for name, boxed in self.attributes.items())


class SienaAttributeConstraint:
    """Siena's constraint shape: name, operator mnemonic, boxed operand."""

    __slots__ = ("name", "op_name", "boxed")

    def __init__(self, constraint: Constraint) -> None:
        self.name = constraint.name
        self.op_name = _SIENA_OP_NAMES[constraint.op]
        self.boxed = (None if constraint.op == Op.EXISTS
                      else SienaAttributeValue(constraint.value))

    def to_constraint(self) -> Constraint:
        op = _SIENA_OP_REVERSE[self.op_name]
        if op == Op.EXISTS:
            return Constraint(self.name, op)
        return Constraint(self.name, op, self.boxed.unbox())

    def wire_size(self) -> int:
        size = len(self.name) + len(self.op_name)
        if self.boxed is not None:
            size += self.boxed.wire_size()
        return size


class SienaTranslationBackend(MatchingEngine):
    """The paper's Siena-based bus: real matcher behind a real translation.

    Wraps an inner :class:`SienaMatcher`; every call crosses the type
    boundary in both directions and reports the copied byte volume to the
    cost meter.
    """

    name = "siena"

    def __init__(self, inner: SienaMatcher | None = None,
                 meter: CostMeter | None = None) -> None:
        super().__init__()
        self._inner = inner if inner is not None else SienaMatcher()
        self._meter = meter if meter is not None else NullCostMeter()
        self.bytes_translated = 0

    def set_meter(self, meter: CostMeter) -> None:
        self._meter = meter

    # -- registration (translate filters in, then index) -----------------

    def _index(self, subscription: Subscription) -> None:
        translated_filters = []
        for filt in subscription.filters:
            siena_constraints = [SienaAttributeConstraint(c) for c in filt]
            self._charge(sum(c.wire_size() for c in siena_constraints))
            # Translate back into the engine's native filter type, as the
            # prototype's interface layer did before handing to Siena.
            translated_filters.append(
                Filter([sc.to_constraint() for sc in siena_constraints]))
        self._inner.subscribe(Subscription(
            subscription.sub_id, subscription.subscriber, translated_filters))

    def _deindex(self, subscription: Subscription) -> None:
        self._inner.unsubscribe(subscription.sub_id)

    # -- matching (translate the event both ways) -------------------------

    def _match_ids(self, attributes: Mapping[str, Value]) -> set[int]:
        # Three passes over the notification, as in the prototype: our
        # format -> Siena objects, Siena's own internal copy while
        # matching, and Siena objects -> our format for delivery.
        notification = SienaNotification.from_attr_map(attributes)
        self._charge(notification.wire_size())
        internal = SienaNotification(dict(notification.attributes))
        self._charge(internal.wire_size())
        translated = internal.to_attr_map()
        self._charge(notification.wire_size())
        self._meter.charge_match()
        return self._inner._match_ids(translated)

    def _charge(self, nbytes: int) -> None:
        self.bytes_translated += nbytes
        self._meter.charge_copy(nbytes)

    @property
    def inner(self) -> SienaMatcher:
        return self._inner
