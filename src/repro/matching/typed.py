"""Type-based publish/subscribe (paper Section VI).

The paper plans "to replace the content-based publish/subscribe mechanism
with a type-based publish/subscribe mechanism, to remove the reliance on
arbitrary tags as event identifiers".  This engine implements that
replacement in the style of Eugster, Guerraoui & Sventek's *Type-Based
Publish/Subscribe* (the paper's reference [13]):

* event types form a hierarchy expressed with dotted names
  (``health.hr.alarm`` is a subtype of ``health.hr``);
* subscribing to a type delivers events of that type **and of every
  subtype** — subtype polymorphism, the property arbitrary string tags
  lack;
* a subscription may carry residual content constraints which are
  evaluated only after the (cheap, trie-indexed) type test passes.

The engine speaks the common :class:`~repro.matching.engine.MatchingEngine`
interface: an ``EQ`` constraint on the reserved ``type`` attribute is
interpreted as a *type-conforming* subscription (self or subtype), which is
exactly how a type-based API differs from a content-based one.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.errors import FilterError
from repro.ids import ServiceId
from repro.matching.engine import MatchingEngine
from repro.matching.filters import TYPE_ATTR, Constraint, Filter, Op, Subscription
from repro.transport.wire import Value

#: Cap on the batch path's per-type-name memo.  Event streams carry few
#: distinct types, so the memo normally stays tiny; a hostile stream of
#: unique type strings resets it wholesale instead of growing forever.
_TYPE_MEMO_MAX = 4096


def split_type(type_name: str) -> list[str]:
    """Split a dotted event type into validated segments."""
    if not type_name:
        raise FilterError("event type must be non-empty")
    segments = type_name.split(".")
    for segment in segments:
        if not segment:
            raise FilterError(f"empty segment in event type: {type_name!r}")
    return segments


def is_subtype(candidate: str, ancestor: str) -> bool:
    """True when ``candidate`` equals ``ancestor`` or extends it by segments."""
    cand = split_type(candidate)
    anc = split_type(ancestor)
    return len(cand) >= len(anc) and cand[:len(anc)] == anc


def typed_subscription(sub_id: int, subscriber: ServiceId, type_name: str,
                       residual: Filter | None = None) -> Subscription:
    """Build a type-conforming subscription for :class:`TypedMatcher`."""
    constraints = [Constraint(TYPE_ATTR, Op.EQ, type_name)]
    if residual is not None:
        constraints.extend(residual.constraints)
    return Subscription(sub_id, subscriber, [Filter(constraints)])


class _TrieNode:
    __slots__ = ("children", "entries")

    def __init__(self) -> None:
        self.children: dict[str, _TrieNode] = {}
        # (fid, sub_id, residual filter) registered exactly at this node.
        self.entries: list[tuple[int, int, Filter]] = []


class TypedMatcher(MatchingEngine):
    """Trie-indexed type-based matcher with residual content filters."""

    name = "typed"

    def __init__(self) -> None:
        super().__init__()
        self._root = _TrieNode()
        self._next_fid = 0
        self.type_tests = 0
        self.residual_tests = 0
        # Batch-path memo: event type name -> flattened (sub id, residual)
        # entries along its trie path.  Mirrors the forwarding engine's
        # satisfied-value memo: event streams repeat type names heavily,
        # so one trie walk serves many events; any registration change
        # invalidates it wholesale.
        self._type_memo: dict[str | None, tuple[tuple[int, Filter], ...]] = {}
        self.memo_hits = 0
        self.memo_misses = 0

    # -- registration ----------------------------------------------------

    def _index(self, subscription: Subscription) -> None:
        self._type_memo.clear()
        for filt in subscription.filters:
            type_name, residual = self._split_filter(filt)
            fid = self._next_fid
            self._next_fid += 1
            node = self._node_for(type_name, create=True)
            node.entries.append((fid, subscription.sub_id, residual))

    def _deindex(self, subscription: Subscription) -> None:
        self._type_memo.clear()
        for node in self._walk(self._root):
            node.entries = [e for e in node.entries
                            if e[1] != subscription.sub_id]

    def _split_filter(self, filt: Filter) -> tuple[str | None, Filter]:
        """Separate the type constraint from the residual content filter."""
        type_name: str | None = None
        residual: list[Constraint] = []
        for constraint in filt:
            if constraint.name == TYPE_ATTR and constraint.op == Op.EQ:
                if type_name is not None:
                    raise FilterError(
                        "typed subscription has two type constraints")
                if not isinstance(constraint.value, str):
                    raise FilterError("event types are strings")
                type_name = constraint.value
            else:
                residual.append(constraint)
        return type_name, Filter(residual)

    def _node_for(self, type_name: str | None, create: bool) -> _TrieNode | None:
        node = self._root
        if type_name is None:
            return node
        for segment in split_type(type_name):
            child = node.children.get(segment)
            if child is None:
                if not create:
                    return None
                child = _TrieNode()
                node.children[segment] = child
            node = child
        return node

    def _walk(self, node: _TrieNode) -> Iterator[_TrieNode]:
        yield node
        for child in node.children.values():
            yield from self._walk(child)

    # -- matching ------------------------------------------------------------

    def _match_ids(self, attributes: Mapping[str, Value]) -> set[int]:
        event_type = attributes.get(TYPE_ATTR)
        matched: set[int] = set()
        # Root entries (no type constraint) apply to every event.
        nodes = [self._root]
        if isinstance(event_type, str):
            node = self._root
            for segment in split_type(event_type):
                node = node.children.get(segment)
                if node is None:
                    break
                nodes.append(node)
                self.type_tests += 1
        for node in nodes:
            for _fid, sub_id, residual in node.entries:
                if sub_id in matched:
                    continue
                self.residual_tests += 1
                if residual.matches(attributes):
                    matched.add(sub_id)
        return matched

    def _match_ids_batch(self, batch: Sequence[Mapping[str, Value]]
                         ) -> list[set[int]]:
        """Trie-walk batch path with a per-type-name node memo.

        The type test of :meth:`_match_ids` — split the dotted name, walk
        the trie, gather entries root-to-leaf — is a pure function of the
        type string and the registration state, so its result is memoised
        per distinct type name across the batch (and across batches,
        until a registration change clears it).  Each event then pays
        only its residual content tests, which genuinely depend on the
        event's attributes.  Entry order matches the per-event walk, so
        match sets are identical — the engine differential suite pins it.
        """
        memo = self._type_memo
        results: list[set[int]] = []
        for attributes in batch:
            event_type = attributes.get(TYPE_ATTR)
            key = event_type if isinstance(event_type, str) else None
            entries = memo.get(key)
            if entries is None:
                self.memo_misses += 1
                entries = self._path_entries(key)
                if len(memo) >= _TYPE_MEMO_MAX:
                    memo.clear()
                memo[key] = entries
            else:
                self.memo_hits += 1
            matched: set[int] = set()
            for sub_id, residual in entries:
                if sub_id in matched:
                    continue
                self.residual_tests += 1
                if residual.matches(attributes):
                    matched.add(sub_id)
            results.append(matched)
        return results

    def _path_entries(self, event_type: str | None
                      ) -> tuple[tuple[int, Filter], ...]:
        """Flattened (sub id, residual) entries on one type's trie path,
        root first — the memoised half of the batch walk."""
        nodes = [self._root]
        if event_type is not None:
            node = self._root
            for segment in split_type(event_type):
                node = node.children.get(segment)
                if node is None:
                    break
                nodes.append(node)
                self.type_tests += 1
        return tuple((sub_id, residual)
                     for node in nodes
                     for _fid, sub_id, residual in node.entries)
