"""Match plans: one shard's matching work as an explicit, shippable value.

The sharded matcher (:mod:`repro.core.sharding`) already split the batch
match phase into a pure function of (shard subscription table, per-shard
event projections).  This module names that function's *input*: a
:class:`MatchPlan` — the shard id, the projected event slices and the
registration epoch they were built against — and the boundary that
executes it, :class:`PlanExecutor`.

Making the plan explicit is what lets the same match phase run anywhere:

* :class:`InlineExecutor` runs each plan on the host's own shard engines,
  reproducing the pre-refactor behaviour exactly (same calls, same match
  sets, same costs) — the default, and the fallback when a worker dies;
* :class:`repro.core.workers.WorkerPoolExecutor` TLV-encodes plans and
  ships them to worker *processes*, which is what finally takes the match
  phase past one CPython core;
* a future federation executor could ship the same plans to another host
  entirely — the plan is a value, not a closure.

A plan is both picklable (plain ints, lists and attribute dicts) and
TLV-serialisable (:func:`write_plan` / :func:`decode_plan`, scatter-gather
chunks riding the PR-5 ``write_*`` discipline: nothing is joined until the
IPC message boundary).  Events cross the worker boundary as wire bytes,
never as pickled objects — the same rule the network path follows.

The *epoch* stamps which version of the subscription table a plan assumes.
Every registration mutation of the sharded matcher bumps its epoch and
(when a sink is attached) emits a per-shard delta; an executor must apply
every delta up to ``plan.epoch`` before running the plan, or its replica
table would be stale and the match set wrong.  Inline execution trivially
satisfies this (host tables are always current); the worker pool replays
delta logs to workers in epoch order ahead of their plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Mapping, Protocol, Sequence

from repro.errors import CodecError
from repro.transport import wire
from repro.transport.wire import Value


@dataclass
class MatchPlan:
    """One shard's slice of a batch match: execute anywhere.

    ``indexes[i]`` is the position in the original batch of the event
    whose projection is ``projections[i]`` — the executor returns one
    match-id collection per projection, and the matcher merges them back
    by index.  ``epoch`` is the registration epoch of the table the plan
    was built against (see module docstring).
    """

    shard: int
    epoch: int
    indexes: list[int] = field(default_factory=list)
    projections: list[Mapping[str, Value]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.indexes)


#: One executed plan: a match-id collection per projected event, aligned
#: with ``plan.indexes``.  Sets from inline engines, lists decoded off a
#: worker's reply — the merge step only iterates them.
PlanResult = Sequence[Collection[int]]


class PlanExecutor(Protocol):
    """The executable-plan boundary of the match phase.

    ``execute`` returns one :data:`PlanResult` per plan, in plan order.
    Implementations must be synchronous and exact: the differential suite
    pins every executor's results against the brute-force oracle.
    """

    def execute(self, plans: Sequence[MatchPlan]) -> list[PlanResult]:
        ...


class _ShardEngineHost(Protocol):
    """What an inline executor needs from the sharded matcher."""

    def shard_engines(self) -> Sequence:
        ...


class InlineExecutor:
    """Execute plans on the host's own shard engines, synchronously.

    This *is* the pre-refactor code path — the same
    ``_match_ids_batch`` calls against the same engine instances — so a
    matcher with the default executor is byte-for-byte the old matcher.
    It is also the crash fallback: host engines stay fully registered
    whatever executor is installed, so any plan can always run here.
    """

    def __init__(self, host: _ShardEngineHost) -> None:
        self._host = host

    def execute(self, plans: Sequence[MatchPlan]) -> list[PlanResult]:
        engines = self._host.shard_engines()
        return [engines[plan.shard]._match_ids_batch(plan.projections)
                for plan in plans]

    def close(self) -> None:
        """Nothing to release; present so executors share a lifecycle."""


# -- wire codec --------------------------------------------------------------
#
# plan := varint shard, varint epoch, varint n,
#         n x varint index, n x attr_map
#
# Projections ride the same TLV attribute-map encoding events use on the
# network (wire.write_attr_map), so a worker decodes them with the stock
# zero-copy readers and the bytes are pinned by the wire test suite.

def write_plan(out: list[bytes], plan: MatchPlan) -> None:
    """Append ``plan``'s wire chunks to ``out`` without joining."""
    out.append(wire.encode_varint(plan.shard))
    out.append(wire.encode_varint(plan.epoch))
    out.append(wire.encode_varint(len(plan.indexes)))
    for index in plan.indexes:
        out.append(wire.encode_varint(index))
    for projection in plan.projections:
        wire.write_attr_map(out, projection)


def encode_plan(plan: MatchPlan) -> bytes:
    """Serialise one plan (joined; IPC framing normally joins instead)."""
    out: list[bytes] = []
    write_plan(out, plan)
    return b"".join(out)


def decode_plan(buf: wire.Buffer, offset: int = 0) -> tuple[MatchPlan, int]:
    """Parse one plan from any wire buffer; returns (plan, new offset)."""
    shard, pos = wire.decode_varint(buf, offset)
    epoch, pos = wire.decode_varint(buf, pos)
    count, pos = wire.decode_varint(buf, pos)
    indexes: list[int] = []
    for _ in range(count):
        index, pos = wire.decode_varint(buf, pos)
        indexes.append(index)
    projections: list[Mapping[str, Value]] = []
    for _ in range(count):
        attrs, pos = wire.decode_attr_map(buf, pos)
        projections.append(attrs)
    if len(projections) != count:          # pragma: no cover - loop invariant
        raise CodecError("plan projection count mismatch")
    return MatchPlan(shard, epoch, indexes, projections), pos
