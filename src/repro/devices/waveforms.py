"""Synthetic vital-sign generation.

The paper monitored real patients; we stand in a deterministic generator
that produces physiologically-shaped vitals with scriptable clinical
episodes (tachycardia, desaturation, fever), so examples and benchmarks
exercise the alarm paths with known ground truth.

All randomness comes from a named :class:`~repro.sim.rng.RngRegistry`
stream, so a given seed always yields the same patient.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class Episode:
    """A clinical episode: a vital is pushed toward a value for a while."""

    vital: str                  # "hr" | "spo2" | "temp" | "systolic"
    start_s: float
    duration_s: float
    peak_value: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("episode duration must be > 0")

    def influence(self, now: float, baseline: float) -> float:
        """Offset applied at time ``now`` (smooth rise and fall)."""
        if not self.start_s <= now <= self.start_s + self.duration_s:
            return 0.0
        phase = (now - self.start_s) / self.duration_s
        envelope = math.sin(math.pi * phase)        # 0 -> 1 -> 0
        return (self.peak_value - baseline) * envelope


@dataclass
class VitalsSample:
    """One instant of a patient's vitals."""

    hr: float
    spo2: float
    temp: float
    systolic: float
    diastolic: float


class VitalSignsGenerator:
    """Deterministic patient simulator."""

    def __init__(self, rng: RngRegistry | None = None, *,
                 patient: str = "patient",
                 hr_baseline: float = 72.0,
                 spo2_baseline: float = 97.0,
                 temp_baseline: float = 36.8,
                 systolic_baseline: float = 118.0,
                 diastolic_baseline: float = 76.0,
                 episodes: list[Episode] | None = None) -> None:
        registry = rng if rng is not None else RngRegistry(0)
        self._rng = registry.stream(f"vitals.{patient}")
        self.patient = patient
        self.hr_baseline = hr_baseline
        self.spo2_baseline = spo2_baseline
        self.temp_baseline = temp_baseline
        self.systolic_baseline = systolic_baseline
        self.diastolic_baseline = diastolic_baseline
        self.episodes = list(episodes or [])

    def add_episode(self, episode: Episode) -> None:
        self.episodes.append(episode)

    def sample(self, now: float) -> VitalsSample:
        """The patient's vitals at simulated time ``now``."""
        # Slow respiratory/physiological oscillations plus sensor noise.
        hr = (self.hr_baseline
              + 2.5 * math.sin(2 * math.pi * now / 37.0)
              + self._rng.gauss(0.0, 0.8)
              + self._episode_offset("hr", now, self.hr_baseline))
        spo2 = (self.spo2_baseline
                + 0.4 * math.sin(2 * math.pi * now / 53.0)
                + self._rng.gauss(0.0, 0.2)
                + self._episode_offset("spo2", now, self.spo2_baseline))
        temp = (self.temp_baseline
                + 0.05 * math.sin(2 * math.pi * now / 600.0)
                + self._rng.gauss(0.0, 0.02)
                + self._episode_offset("temp", now, self.temp_baseline))
        systolic = (self.systolic_baseline
                    + 3.0 * math.sin(2 * math.pi * now / 97.0)
                    + self._rng.gauss(0.0, 1.5)
                    + self._episode_offset("systolic", now,
                                           self.systolic_baseline))
        diastolic = (self.diastolic_baseline
                     + 2.0 * math.sin(2 * math.pi * now / 97.0)
                     + self._rng.gauss(0.0, 1.0))
        return VitalsSample(
            hr=max(20.0, hr),
            spo2=min(100.0, max(50.0, spo2)),
            temp=max(30.0, temp),
            systolic=max(60.0, systolic),
            diastolic=max(40.0, min(diastolic, systolic - 10.0)),
        )

    def ecg_samples(self, now: float, count: int,
                    sample_rate_hz: float = 250.0) -> list[float]:
        """A burst of ECG waveform samples (for the bus-bypassing stream).

        A crude PQRST-ish shape: a sharp R spike on each beat plus baseline
        wander — enough to give the raw stream realistic size and rhythm.
        """
        hr = self.sample(now).hr
        beat_period = 60.0 / max(hr, 1.0)
        samples = []
        for i in range(count):
            t = now + i / sample_rate_hz
            phase = (t % beat_period) / beat_period
            value = 0.05 * math.sin(2 * math.pi * t / 3.0)
            if 0.02 <= phase < 0.06:
                value += 1.2 * math.sin(math.pi * (phase - 0.02) / 0.04)
            elif 0.30 <= phase < 0.45:
                value += 0.25 * math.sin(math.pi * (phase - 0.30) / 0.15)
            samples.append(value + self._rng.gauss(0.0, 0.01))
        return samples

    def _episode_offset(self, vital: str, now: float, baseline: float) -> float:
        return sum(episode.influence(now, baseline)
                   for episode in self.episodes if episode.vital == vital)


def tachycardia(start_s: float, duration_s: float = 60.0,
                peak_bpm: float = 150.0) -> Episode:
    """A racing-heart episode (what the HighHeartRate policy watches for)."""
    return Episode("hr", start_s, duration_s, peak_bpm)


def desaturation(start_s: float, duration_s: float = 45.0,
                 trough_percent: float = 86.0) -> Episode:
    """An oxygen desaturation episode."""
    return Episode("spo2", start_s, duration_s, trough_percent)


def fever(start_s: float, duration_s: float = 1800.0,
          peak_celsius: float = 39.2) -> Episode:
    """A slow fever."""
    return Episode("temp", start_s, duration_s, peak_celsius)
