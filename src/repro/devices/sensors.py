"""Concrete body sensors.

Each sensor is a :class:`~repro.devices.base.RawSensorDevice` pairing a
wire protocol with the patient's synthetic vitals.  The heart-rate sensor
additionally keeps a device-side alarm threshold which management commands
can retune at run time — the paper's canonical example of a control command
("change thresholds or monitoring strategy").

The :class:`ECGMonitor` demonstrates the paper's architectural carve-out:
"we do not consider that all communication within an SMC is routed via the
event bus.  We assume there may be ... monitored data, such as from a heart
ECG monitor that could be sent to a remote station for viewing and
analysis."  It joins the cell like any member, but streams its waveform as
fire-and-forget RAW frames straight to a sink, bypassing the bus.
"""

from __future__ import annotations

import struct

from repro.devices.base import RawSensorDevice
from repro.devices.protocols import (
    SET_PERIOD_OP,
    SET_THRESHOLD_OP,
    BloodPressureProtocol,
    HeartRateProtocol,
    SpO2Protocol,
    TemperatureProtocol,
    seal,
    unseal,
)
from repro.devices.waveforms import VitalSignsGenerator
from repro.discovery.agent import AgentConfig
from repro.sim.kernel import Scheduler
from repro.transport.base import Address
from repro.transport.endpoint import PacketEndpoint


class HeartRateSensor(RawSensorDevice):
    """Heart-rate sensor with a retunable device-side alarm threshold."""

    def __init__(self, endpoint: PacketEndpoint, scheduler: Scheduler,
                 name: str, vitals: VitalSignsGenerator, *,
                 period_s: float = 1.0, threshold_bpm: float = 120.0,
                 credentials: bytes = b"", target_cell: str | None = None) -> None:
        super().__init__(endpoint, scheduler,
                         AgentConfig(name=name, device_type="sensor.hr",
                                     credentials=credentials,
                                     target_cell=target_cell),
                         period_s=period_s, reliable=True)
        self.vitals = vitals
        self.threshold_bpm = threshold_bpm
        self._protocol = HeartRateProtocol(vitals.patient)

    def make_reading(self, now: float) -> bytes | None:
        bpm = self.vitals.sample(now).hr
        return self._protocol.encode_reading(bpm,
                                             alarm=bpm > self.threshold_bpm)

    def handle_command(self, data: bytes) -> None:
        decoded = self._protocol.decode_command(data)
        if decoded is None:
            return
        operation, value = decoded
        if operation == SET_THRESHOLD_OP:
            self.threshold_bpm = value
        elif operation == SET_PERIOD_OP:
            self.set_period(value)


class BloodPressureSensor(RawSensorDevice):
    """Blood-pressure cuff with a command-settable measurement period."""

    def __init__(self, endpoint: PacketEndpoint, scheduler: Scheduler,
                 name: str, vitals: VitalSignsGenerator, *,
                 period_s: float = 30.0, credentials: bytes = b"",
                 target_cell: str | None = None) -> None:
        super().__init__(endpoint, scheduler,
                         AgentConfig(name=name, device_type="sensor.bp",
                                     credentials=credentials,
                                     target_cell=target_cell),
                         period_s=period_s, reliable=True)
        self.vitals = vitals
        self._protocol = BloodPressureProtocol(vitals.patient)

    def make_reading(self, now: float) -> bytes | None:
        sample = self.vitals.sample(now)
        return self._protocol.encode_reading(sample.systolic, sample.diastolic)

    def handle_command(self, data: bytes) -> None:
        decoded = self._protocol.decode_command(data)
        if decoded is not None and decoded[0] == SET_PERIOD_OP:
            self.set_period(decoded[1])


class SpO2Sensor(RawSensorDevice):
    """Pulse oximeter."""

    def __init__(self, endpoint: PacketEndpoint, scheduler: Scheduler,
                 name: str, vitals: VitalSignsGenerator, *,
                 period_s: float = 2.0, credentials: bytes = b"",
                 target_cell: str | None = None) -> None:
        super().__init__(endpoint, scheduler,
                         AgentConfig(name=name, device_type="sensor.spo2",
                                     credentials=credentials,
                                     target_cell=target_cell),
                         period_s=period_s, reliable=True)
        self.vitals = vitals
        self._protocol = SpO2Protocol(vitals.patient)

    def make_reading(self, now: float) -> bytes | None:
        sample = self.vitals.sample(now)
        return self._protocol.encode_reading(sample.spo2, sample.hr)


class TemperatureSensor(RawSensorDevice):
    """Body-temperature sensor, fire-and-forget by default (the paper's
    example of a device needing no acknowledgements)."""

    def __init__(self, endpoint: PacketEndpoint, scheduler: Scheduler,
                 name: str, vitals: VitalSignsGenerator, *,
                 period_s: float = 10.0, reliable: bool = False,
                 credentials: bytes = b"", target_cell: str | None = None) -> None:
        super().__init__(endpoint, scheduler,
                         AgentConfig(name=name, device_type="sensor.temp",
                                     credentials=credentials,
                                     target_cell=target_cell),
                         period_s=period_s, reliable=reliable)
        self.vitals = vitals
        self._protocol = TemperatureProtocol(vitals.patient)

    def make_reading(self, now: float) -> bytes | None:
        return self._protocol.encode_reading(self.vitals.sample(now).temp)


_ECG_MAGIC = 0x45       # 'E'


class ECGMonitor(RawSensorDevice):
    """Streams ECG waveform bursts directly to a sink, bypassing the bus."""

    def __init__(self, endpoint: PacketEndpoint, scheduler: Scheduler,
                 name: str, vitals: VitalSignsGenerator,
                 sink_address: Address, *, period_s: float = 0.25,
                 samples_per_burst: int = 64, credentials: bytes = b"",
                 target_cell: str | None = None) -> None:
        super().__init__(endpoint, scheduler,
                         AgentConfig(name=name, device_type="sensor.ecg",
                                     credentials=credentials,
                                     target_cell=target_cell),
                         period_s=period_s, reliable=False)
        self.vitals = vitals
        self.sink_address = sink_address
        self.samples_per_burst = samples_per_burst
        self.bursts_streamed = 0

    def make_reading(self, now: float) -> bytes | None:
        return None          # nothing goes through the proxy path

    def _report(self) -> None:
        # Override the reporting tick entirely: the waveform goes straight
        # to the remote station, not through the SMC core.
        if not self.joined:
            return
        now = self.scheduler.now()
        samples = self.vitals.ecg_samples(now, self.samples_per_burst)
        body = struct.pack("!Bd H", _ECG_MAGIC, now, len(samples))
        body += b"".join(struct.pack("!h", round(s * 1000)) for s in samples)
        self.endpoint.send_raw(self.sink_address, seal(body))
        self.bursts_streamed += 1
        self.stats.readings_sent += 1


class ECGSink:
    """The remote viewing station an ECG monitor streams to."""

    def __init__(self, endpoint: PacketEndpoint) -> None:
        self.endpoint = endpoint
        self.bursts_received = 0
        self.samples_received = 0
        self.last_burst: list[float] = []
        endpoint.set_payload_handler(self._on_payload)

    def _on_payload(self, peer, payload: bytes) -> None:
        body = unseal(payload)
        if body is None or len(body) < 11 or body[0] != _ECG_MAGIC:
            return
        (_magic, _timestamp, count) = struct.unpack_from("!Bd H", body)
        expected = 11 + 2 * count
        if len(body) != expected:
            return
        values = struct.unpack_from(f"!{count}h", body, 11)
        self.last_burst = [v / 1000.0 for v in values]
        self.bursts_received += 1
        self.samples_received += count
