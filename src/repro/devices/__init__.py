"""Simulated e-health devices (the paper's application domain).

The paper's SMC is "a body area network for monitoring patients": on-body
sensors for heart rate, blood pressure, blood oxygen and temperature, an
ECG monitor whose bulk stream deliberately bypasses the event bus, and
actuator devices ("heart defibrillators, insulin and other drug pumps ...
that could be triggered by these events").

* :mod:`repro.devices.protocols` — each simple sensor's byte wire format
  and the translator its proxy uses (paper Section III-B: translation
  between "the device protocol and higher level event types");
* :mod:`repro.devices.waveforms` — deterministic synthetic vital-sign
  generators (with scripted clinical episodes) standing in for real
  patients;
* :mod:`repro.devices.base` — device chassis: discovery + reporting loop
  for raw-protocol devices, discovery + BusClient for smart ones;
* :mod:`repro.devices.sensors` / :mod:`repro.devices.actuators` — the
  concrete devices used by the examples, tests and benchmarks.
"""

from repro.devices.actuators import DrugPump, NurseDisplay
from repro.devices.base import Device, RawSensorDevice, SmartDevice
from repro.devices.protocols import (
    BloodPressureProtocol,
    HeartRateProtocol,
    PumpProtocol,
    NotifyProtocol,
    SpO2Protocol,
    TemperatureProtocol,
    standard_translators,
)
from repro.devices.sensors import (
    BloodPressureSensor,
    ECGMonitor,
    ECGSink,
    HeartRateSensor,
    SpO2Sensor,
    TemperatureSensor,
)
from repro.devices.waveforms import VitalSignsGenerator

__all__ = [
    "Device",
    "RawSensorDevice",
    "SmartDevice",
    "HeartRateProtocol",
    "BloodPressureProtocol",
    "SpO2Protocol",
    "TemperatureProtocol",
    "PumpProtocol",
    "NotifyProtocol",
    "standard_translators",
    "VitalSignsGenerator",
    "HeartRateSensor",
    "BloodPressureSensor",
    "SpO2Sensor",
    "TemperatureSensor",
    "ECGMonitor",
    "ECGSink",
    "DrugPump",
    "NurseDisplay",
]
