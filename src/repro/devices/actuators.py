"""Actuator devices.

"Actuator devices such as heart defibrillators, insulin and other drug
pumps are being developed that could be triggered by these events."  Both
actuators here are command consumers: the cell's policy service reacts to
sensor events and publishes ``smc.cmd.*`` events, which the actuator's
proxy translates into the device bytes these classes execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import protocol as bus_protocol
from repro.core.protocol import BusOp
from repro.devices.base import RawSensorDevice
from repro.devices.protocols import NotifyProtocol, PumpProtocol
from repro.discovery.agent import AgentConfig
from repro.sim.kernel import Scheduler
from repro.transport.endpoint import PacketEndpoint


@dataclass
class DoseRecord:
    """One executed pump command."""

    at: float
    dose_ml: float
    reservoir_after_ml: float = field(default=0.0)


class DrugPump(RawSensorDevice):
    """An infusion pump with a finite reservoir and a device-side rate limit.

    Defence in depth: the proxy's translator already refuses doses above
    the protocol bound, and the pump itself refuses to exceed
    ``max_hourly_ml`` no matter what arrives — a medical actuator must not
    trust the network.
    """

    def __init__(self, endpoint: PacketEndpoint, scheduler: Scheduler,
                 name: str, patient: str, *, reservoir_ml: float = 100.0,
                 max_hourly_ml: float = 10.0, status_period_s: float = 60.0,
                 credentials: bytes = b"", target_cell: str | None = None) -> None:
        super().__init__(endpoint, scheduler,
                         AgentConfig(name=name, device_type="actuator.pump",
                                     credentials=credentials,
                                     target_cell=target_cell),
                         period_s=status_period_s, reliable=True)
        self.reservoir_ml = reservoir_ml
        self.max_hourly_ml = max_hourly_ml
        self.doses: list[DoseRecord] = []
        self.refused_doses = 0
        self._protocol = PumpProtocol(patient)

    # Status reports ride the normal reading path.
    def make_reading(self, now: float) -> bytes | None:
        recent = sum(d.dose_ml for d in self.doses)
        return self._protocol.encode_status(recent, self.reservoir_ml)

    def handle_command(self, data: bytes) -> None:
        dose = self._protocol.decode_dose(data)
        if dose is None:
            return
        now = self.scheduler.now()
        if not self._dose_allowed(dose, now):
            self.refused_doses += 1
            return
        self.reservoir_ml = max(0.0, self.reservoir_ml - dose)
        self.doses.append(DoseRecord(at=now, dose_ml=dose,
                                     reservoir_after_ml=self.reservoir_ml))

    def _dose_allowed(self, dose: float, now: float) -> bool:
        if dose <= 0 or dose > self.reservoir_ml:
            return False
        recent = sum(d.dose_ml for d in self.doses if now - d.at < 3600.0)
        return recent + dose <= self.max_hourly_ml

    def delivered_total_ml(self) -> float:
        return sum(d.dose_ml for d in self.doses)


class NurseDisplay(RawSensorDevice):
    """The nurse's PDA display: renders notify commands as messages."""

    def __init__(self, endpoint: PacketEndpoint, scheduler: Scheduler,
                 name: str, *, credentials: bytes = b"",
                 target_cell: str | None = None) -> None:
        super().__init__(endpoint, scheduler,
                         AgentConfig(name=name,
                                     device_type="actuator.display",
                                     credentials=credentials,
                                     target_cell=target_cell),
                         period_s=3600.0, reliable=True)
        self.messages: list[tuple[float, str]] = []
        self._protocol = NotifyProtocol("", listen_targets=["nurse"])

    def make_reading(self, now: float) -> bytes | None:
        return None          # a display has nothing to report

    def handle_command(self, data: bytes) -> None:
        text = self._protocol.decode_text(data)
        if text is not None:
            self.messages.append((self.scheduler.now(), text))

    def last_message(self) -> str | None:
        return self.messages[-1][1] if self.messages else None


class ManualSensor(RawSensorDevice):
    """A test/demo device whose readings are pushed by the caller.

    Useful in examples and tests that need precise control over what gets
    sent and when, without a waveform generator.
    """

    def __init__(self, endpoint: PacketEndpoint, scheduler: Scheduler,
                 name: str, device_type: str, *, credentials: bytes = b"",
                 target_cell: str | None = None) -> None:
        super().__init__(endpoint, scheduler,
                         AgentConfig(name=name, device_type=device_type,
                                     credentials=credentials,
                                     target_cell=target_cell),
                         period_s=3600.0, reliable=True)
        self.received_commands: list[bytes] = []

    def make_reading(self, now: float) -> bytes | None:
        return None

    def handle_command(self, data: bytes) -> None:
        self.received_commands.append(data)

    def send_reading(self, data: bytes, *, reliable: bool = True) -> bool:
        """Send one raw reading immediately; returns False if not joined."""
        if not self.joined or self.core_address is None:
            return False
        payload = bus_protocol.frame(BusOp.DEVICE_DATA, data)
        if reliable:
            self.endpoint.send_reliable(self.core_address, payload)
        else:
            self.endpoint.send_raw(self.core_address, payload)
        self.stats.readings_sent += 1
        return True


__all__ = ["DrugPump", "NurseDisplay", "ManualSensor", "DoseRecord"]
