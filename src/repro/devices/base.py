"""Device chassis.

A device is a node of its own: it owns a transport endpoint and a
discovery agent, joins whatever cell it hears beaconing, and then does its
job until it loses the cell.  Two chassis flavours mirror the paper's
proxy-complexity spectrum:

* :class:`RawSensorDevice` — a *simple* device: it emits raw protocol
  bytes (DEVICE_DATA frames) on a timer and obeys DEVICE_CMD bytes; all
  event intelligence lives in its (complex) proxy on the SMC core.
* :class:`SmartDevice` — a *complex* device: it runs a
  :class:`~repro.core.client.BusClient` and publishes/subscribes typed
  events itself; its (simple) proxy merely forwards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import protocol as bus_protocol
from repro.core.client import BusClient
from repro.core.protocol import BusOp
from repro.discovery.agent import AgentConfig, DiscoveryAgent
from repro.errors import ConfigurationError
from repro.sim.kernel import Scheduler
from repro.transport import wire
from repro.transport.base import Address
from repro.transport.endpoint import PacketEndpoint


@dataclass
class DeviceStats:
    readings_sent: int = 0
    commands_received: int = 0
    joins: int = 0
    losses: int = 0


class Device:
    """Base: endpoint + discovery agent + join/leave bookkeeping."""

    def __init__(self, endpoint: PacketEndpoint, scheduler: Scheduler,
                 agent_config: AgentConfig) -> None:
        self.endpoint = endpoint
        self.scheduler = scheduler
        self.name = agent_config.name
        self.device_type = agent_config.device_type
        self.stats = DeviceStats()
        self.agent = DiscoveryAgent(endpoint, scheduler, agent_config)
        self.agent.on_joined = self._joined
        self.agent.on_left = self._left
        self.core_address: Address | None = None
        self.cell_name: str | None = None

    def start(self) -> None:
        self.agent.start()

    def stop(self) -> None:
        self.agent.stop()
        self.core_address = None
        self.cell_name = None

    @property
    def joined(self) -> bool:
        return self.agent.joined

    # -- membership hooks -------------------------------------------------

    def _joined(self, cell_name: str, core_address: Address) -> None:
        if self.agent.last_join_was_new:
            # A new membership session: any channel state left over from a
            # previous session with this core is stale (the cell built a
            # fresh proxy and a fresh channel for us).
            self.endpoint.reset_channel_to(core_address)
        self.cell_name = cell_name
        self.core_address = core_address
        self.stats.joins += 1
        self.on_joined()

    def _left(self, reason: str) -> None:
        self.core_address = None
        self.cell_name = None
        self.stats.losses += 1
        self.on_left(reason)

    def on_joined(self) -> None:
        """Subclass hook: membership established."""

    def on_left(self, reason: str) -> None:
        """Subclass hook: membership lost."""


class RawSensorDevice(Device):
    """A simple device emitting protocol bytes on a timer.

    ``reliable=False`` sends readings as fire-and-forget RAW packets — the
    paper's unacknowledged temperature sensor.  Reliable mode queues them
    on the acknowledged channel.
    """

    def __init__(self, endpoint: PacketEndpoint, scheduler: Scheduler,
                 agent_config: AgentConfig, *, period_s: float = 1.0,
                 reliable: bool = True) -> None:
        if period_s <= 0:
            raise ConfigurationError(f"period_s must be > 0, got {period_s}")
        super().__init__(endpoint, scheduler, agent_config)
        self.period_s = period_s
        self.reliable = reliable
        self._report_timer = None
        endpoint.set_payload_handler(self._on_payload)

    # -- reporting loop ----------------------------------------------------

    def on_joined(self) -> None:
        self._start_reporting()

    def on_left(self, reason: str) -> None:
        self._stop_reporting()

    def _start_reporting(self) -> None:
        self._stop_reporting()
        self._report_timer = self.scheduler.every(self.period_s, self._report)

    def _stop_reporting(self) -> None:
        if self._report_timer is not None:
            self._report_timer.cancel()
            self._report_timer = None

    def _report(self) -> None:
        if not self.joined or self.core_address is None:
            return
        reading = self.make_reading(self.scheduler.now())
        if reading is None:
            return
        payload = bus_protocol.frame(BusOp.DEVICE_DATA, reading)
        if self.reliable:
            self.endpoint.send_reliable(self.core_address, payload)
        else:
            self.endpoint.send_raw(self.core_address, payload)
        self.stats.readings_sent += 1

    def set_period(self, period_s: float) -> None:
        """Change the reporting period (a management command's doing)."""
        if period_s <= 0:
            raise ConfigurationError(f"period_s must be > 0, got {period_s}")
        self.period_s = period_s
        if self._report_timer is not None:
            self._start_reporting()

    # -- subclass hooks ---------------------------------------------------

    def make_reading(self, now: float) -> bytes | None:
        """Produce the raw bytes of one reading (None skips this tick)."""
        raise NotImplementedError

    def handle_command(self, data: bytes) -> None:
        """React to raw command bytes from the proxy."""

    # -- inbound ------------------------------------------------------------

    def _on_payload(self, peer, payload: bytes) -> None:
        try:
            op, body = bus_protocol.unframe(payload)
        except Exception:
            return
        if op == BusOp.DEVICE_CMD:
            self.stats.commands_received += 1
            # Device protocol parsers expect real bytes; the zero-copy
            # decode path hands up memoryview slices.
            self.handle_command(wire.as_bytes(body))


class SmartDevice(Device):
    """A complex device speaking the bus protocol through a BusClient.

    One client lives for the whole device lifetime: its sequence counter
    must survive transient disconnections, because the cell masks those
    (the member was never purged, so the bus's duplicate-suppression
    watermark for this sender is still in force).  Only the bus address is
    refreshed on each join.
    """

    def __init__(self, endpoint: PacketEndpoint, scheduler: Scheduler,
                 agent_config: AgentConfig) -> None:
        super().__init__(endpoint, scheduler, agent_config)
        self.client = BusClient(endpoint, scheduler, bus_address=None)
        self._ever_connected = False

    def on_joined(self) -> None:
        rejoined = self._ever_connected
        self._ever_connected = True
        self.client.bus_address = self.core_address
        if rejoined and self.agent.last_join_was_new:
            # We were purged and re-admitted: the new proxy has no
            # subscription table, so put our subscriptions back.
            self.client.resubscribe_all()
        self.on_connected(self.client, rejoined=rejoined)

    def on_left(self, reason: str) -> None:
        self.client.bus_address = None

    def on_connected(self, client: BusClient, *, rejoined: bool) -> None:
        """Subclass hook: the bus client is ready (subscribe/publish here).

        ``rejoined`` is True when this is a re-connection after a transient
        loss; subscriptions may need re-issuing if the member was purged in
        the meantime.
        """
