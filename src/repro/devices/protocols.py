"""Device wire protocols and their proxy translators.

Each simple device speaks a tiny binary protocol of its own — the
heterogeneity the proxy layer exists to mask.  A translator implements the
:class:`~repro.core.proxy.DeviceTranslator` interface: readings become
typed events ("the temperature sensor ... may periodically send a series
of bytes representing a temperature reading, which the proxy converts into
an object representing an event carrying that temperature"), and selected
``smc.cmd.*`` events become device command bytes.

Every frame is ``magic, opcode, body..., xor-checksum`` so corrupted frames
are detectably dropped, and every translator is parameterised with the
patient id so readings arrive on the bus already attributed.
"""

from __future__ import annotations

import struct

from repro.core.events import COMMAND_TYPE_PREFIX, Event
from repro.errors import CodecError
from repro.matching.filters import Filter

SET_THRESHOLD_OP = "set_threshold"
SET_PERIOD_OP = "set_period"
DOSE_OP = "deliver_dose"
NOTIFY_OP = "notify"

_OP_READING = 0x01
_OP_SET_THRESHOLD = 0x02
_OP_SET_PERIOD = 0x03
_OP_ACK = 0x04
_OP_DOSE = 0x05
_OP_STATUS = 0x06
_OP_TEXT = 0x07


def _checksum(frame: bytes) -> int:
    value = 0
    for byte in frame:
        value ^= byte
    return value


def seal(frame: bytes) -> bytes:
    """Append the xor checksum."""
    return frame + bytes((_checksum(frame),))


def unseal(frame: bytes) -> bytes | None:
    """Verify and strip the checksum; None when corrupt/too short."""
    if len(frame) < 2:
        return None
    body, check = frame[:-1], frame[-1]
    if _checksum(body) != check:
        return None
    return body


class _BaseProtocol:
    """Shared plumbing: magic/opcode framing and command targeting."""

    magic: int = 0x00
    device_type: str = ""
    event_type: str = ""

    def __init__(self, patient: str, listen_targets: list[str] | None = None) -> None:
        self.patient = patient
        #: Role/member names whose commands this device obeys.
        self.listen_targets = list(listen_targets or [])

    # -- frame helpers -----------------------------------------------------

    def _open(self, data: bytes, expected_op: int) -> bytes | None:
        body = unseal(data)
        if body is None or len(body) < 2:
            return None
        if body[0] != self.magic or body[1] != expected_op:
            return None
        return body[2:]

    def _frame(self, op: int, payload: bytes = b"") -> bytes:
        return seal(bytes((self.magic, op)) + payload)

    def encode_ack(self) -> bytes:
        return self._frame(_OP_ACK)

    def is_ack(self, data: bytes) -> bool:
        return self._open(data, _OP_ACK) is not None

    def _target_filters(self, operation: str) -> list[Filter]:
        command_type = COMMAND_TYPE_PREFIX + operation
        if not self.listen_targets:
            return [Filter.where(command_type)]
        return [Filter.where(command_type, target=target)
                for target in self.listen_targets]


class HeartRateProtocol(_BaseProtocol):
    """Heart-rate sensor: bpm in tenths, alarm flag, settable threshold."""

    magic = 0x48            # 'H'
    device_type = "sensor.hr"
    event_type = "health.hr"

    def encode_reading(self, bpm: float, alarm: bool = False) -> bytes:
        tenths = max(0, min(0xFFFF, round(bpm * 10)))
        return self._frame(_OP_READING,
                           struct.pack("!HB", tenths, 1 if alarm else 0))

    def decode_reading(self, data: bytes, now: float) -> tuple[str, dict] | None:
        body = self._open(data, _OP_READING)
        if body is None or len(body) != 3:
            return None
        tenths, alarm = struct.unpack("!HB", body)
        return self.event_type, {
            "hr": tenths / 10.0,
            "alarm": bool(alarm),
            "patient": self.patient,
        }

    def encode_command(self, event: Event) -> bytes | None:
        if event.type == COMMAND_TYPE_PREFIX + SET_THRESHOLD_OP:
            value = event.get("value")
            if isinstance(value, (int, float)) and 0 <= value <= 6553:
                return self._frame(_OP_SET_THRESHOLD,
                                   struct.pack("!H", round(value * 10)))
        if event.type == COMMAND_TYPE_PREFIX + SET_PERIOD_OP:
            value = event.get("value")
            if isinstance(value, (int, float)) and 0 < value <= 3600:
                return self._frame(_OP_SET_PERIOD,
                                   struct.pack("!H", round(value * 100)))
        return None

    def decode_command(self, data: bytes) -> tuple[str, float] | None:
        """Device-side command parse: (operation, value)."""
        body = self._open(data, _OP_SET_THRESHOLD)
        if body is not None and len(body) == 2:
            return SET_THRESHOLD_OP, struct.unpack("!H", body)[0] / 10.0
        body = self._open(data, _OP_SET_PERIOD)
        if body is not None and len(body) == 2:
            return SET_PERIOD_OP, struct.unpack("!H", body)[0] / 100.0
        return None

    def command_filters(self) -> list[Filter]:
        return (self._target_filters(SET_THRESHOLD_OP)
                + self._target_filters(SET_PERIOD_OP))


class BloodPressureProtocol(_BaseProtocol):
    """Blood-pressure cuff: systolic/diastolic mmHg."""

    magic = 0x42            # 'B'
    device_type = "sensor.bp"
    event_type = "health.bp"

    def encode_reading(self, systolic: float, diastolic: float) -> bytes:
        return self._frame(_OP_READING, struct.pack(
            "!HH", max(0, min(0xFFFF, round(systolic))),
            max(0, min(0xFFFF, round(diastolic)))))

    def decode_reading(self, data: bytes, now: float) -> tuple[str, dict] | None:
        body = self._open(data, _OP_READING)
        if body is None or len(body) != 4:
            return None
        systolic, diastolic = struct.unpack("!HH", body)
        return self.event_type, {
            "systolic": systolic, "diastolic": diastolic,
            "patient": self.patient,
        }

    def encode_command(self, event: Event) -> bytes | None:
        if event.type == COMMAND_TYPE_PREFIX + SET_PERIOD_OP:
            value = event.get("value")
            if isinstance(value, (int, float)) and 0 < value <= 3600:
                return self._frame(_OP_SET_PERIOD,
                                   struct.pack("!H", round(value * 100)))
        return None

    def decode_command(self, data: bytes) -> tuple[str, float] | None:
        body = self._open(data, _OP_SET_PERIOD)
        if body is not None and len(body) == 2:
            return SET_PERIOD_OP, struct.unpack("!H", body)[0] / 100.0
        return None

    def command_filters(self) -> list[Filter]:
        return self._target_filters(SET_PERIOD_OP)


class SpO2Protocol(_BaseProtocol):
    """Pulse oximeter: oxygen saturation percent and pulse."""

    magic = 0x4F            # 'O'
    device_type = "sensor.spo2"
    event_type = "health.spo2"

    def encode_reading(self, percent: float, pulse: float) -> bytes:
        return self._frame(_OP_READING, struct.pack(
            "!BH", max(0, min(100, round(percent))),
            max(0, min(0xFFFF, round(pulse * 10)))))

    def decode_reading(self, data: bytes, now: float) -> tuple[str, dict] | None:
        body = self._open(data, _OP_READING)
        if body is None or len(body) != 3:
            return None
        percent, pulse_tenths = struct.unpack("!BH", body)
        return self.event_type, {
            "spo2": percent, "pulse": pulse_tenths / 10.0,
            "patient": self.patient,
        }

    def encode_command(self, event: Event) -> bytes | None:
        return None

    def command_filters(self) -> list[Filter]:
        return []


class TemperatureProtocol(_BaseProtocol):
    """Body-temperature sensor — the paper's own example of a device that
    "may periodically transmit data and not require any acknowledgement"."""

    magic = 0x54            # 'T'
    device_type = "sensor.temp"
    event_type = "health.temp"

    def encode_reading(self, celsius: float) -> bytes:
        centi = max(0, min(0xFFFF, round(celsius * 100)))
        return self._frame(_OP_READING, struct.pack("!H", centi))

    def decode_reading(self, data: bytes, now: float) -> tuple[str, dict] | None:
        body = self._open(data, _OP_READING)
        if body is None or len(body) != 2:
            return None
        (centi,) = struct.unpack("!H", body)
        return self.event_type, {
            "celsius": centi / 100.0, "patient": self.patient,
        }

    def encode_command(self, event: Event) -> bytes | None:
        return None

    def command_filters(self) -> list[Filter]:
        return []


class PumpProtocol(_BaseProtocol):
    """Drug pump actuator: dose commands in, status confirmations out.

    ``max_dose_ml`` is a protocol-level safety bound: the translator
    refuses to encode a command exceeding it, whatever policy asked for.
    """

    magic = 0x50            # 'P'
    device_type = "actuator.pump"
    event_type = "health.pump"

    def __init__(self, patient: str, listen_targets: list[str] | None = None,
                 max_dose_ml: float = 5.0) -> None:
        super().__init__(patient, listen_targets)
        self.max_dose_ml = max_dose_ml

    def encode_command(self, event: Event) -> bytes | None:
        if event.type != COMMAND_TYPE_PREFIX + DOSE_OP:
            return None
        dose = event.get("dose_ml")
        if not isinstance(dose, (int, float)) or not 0 < dose <= self.max_dose_ml:
            return None
        return self._frame(_OP_DOSE, struct.pack("!H", round(dose * 100)))

    def decode_dose(self, data: bytes) -> float | None:
        """Device-side parse of a dose command."""
        body = self._open(data, _OP_DOSE)
        if body is None or len(body) != 2:
            return None
        return struct.unpack("!H", body)[0] / 100.0

    def encode_status(self, delivered_ml: float, reservoir_ml: float) -> bytes:
        return self._frame(_OP_STATUS, struct.pack(
            "!HH", round(delivered_ml * 100),
            max(0, min(0xFFFF, round(reservoir_ml * 100)))))

    def decode_reading(self, data: bytes, now: float) -> tuple[str, dict] | None:
        body = self._open(data, _OP_STATUS)
        if body is None or len(body) != 4:
            return None
        delivered, reservoir = struct.unpack("!HH", body)
        return self.event_type, {
            "delivered_ml": delivered / 100.0,
            "reservoir_ml": reservoir / 100.0,
            "patient": self.patient,
        }

    def command_filters(self) -> list[Filter]:
        return self._target_filters(DOSE_OP)


class NotifyProtocol(_BaseProtocol):
    """Nurse display / alarm buzzer: renders notify commands as text."""

    magic = 0x4E            # 'N'
    device_type = "actuator.display"
    event_type = "health.display"

    def encode_command(self, event: Event) -> bytes | None:
        if event.type != COMMAND_TYPE_PREFIX + NOTIFY_OP:
            return None
        message = event.get("msg", "")
        if not isinstance(message, str):
            return None
        raw = message.encode("utf-8")[:255]
        return self._frame(_OP_TEXT, bytes((len(raw),)) + raw)

    def decode_text(self, data: bytes) -> str | None:
        """Device-side parse of a displayed message."""
        body = self._open(data, _OP_TEXT)
        if body is None or len(body) < 1 or len(body) != 1 + body[0]:
            return None
        try:
            return body[1:].decode("utf-8")
        except UnicodeDecodeError:
            return None

    def decode_reading(self, data: bytes, now: float) -> tuple[str, dict] | None:
        return None

    def command_filters(self) -> list[Filter]:
        return self._target_filters(NOTIFY_OP)


def standard_translators(patient: str) -> list[_BaseProtocol]:
    """The default translator set an e-health cell registers at bootstrap.

    Sensors obey commands addressed to the ``monitor`` role; actuators to
    their own roles (``pump``, ``nurse``).
    """
    return [
        HeartRateProtocol(patient, listen_targets=["monitor"]),
        BloodPressureProtocol(patient, listen_targets=["monitor"]),
        SpO2Protocol(patient),
        TemperatureProtocol(patient),
        PumpProtocol(patient, listen_targets=["pump"]),
        NotifyProtocol(patient, listen_targets=["nurse"]),
    ]


def ensure_frame(data: bytes) -> bytes:
    """Validate a sealed frame, raising CodecError on corruption (tests)."""
    if unseal(data) is None:
        raise CodecError(f"corrupt device frame: {data!r}")
    return data
