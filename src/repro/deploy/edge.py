"""Edge admission and backpressure for a deployed cell.

A cell on real sockets faces two loads the simulated testbed never
produced: more devices than it was sized for, and members that accept
deliveries slower than the bus produces them.  Both are handled at the
edge, before they can distort the core:

* :class:`CapacityAuthenticator` bounds membership — ANNOUNCEs beyond the
  configured capacity are NAKed (the device backs off and retries), so an
  overload never gets past admission.
* :class:`BackpressureGuard` bounds per-peer outbound state — a periodic
  sweep measures every member channel's unacknowledged backlog, sends a
  quench advisory to a member whose queue is growing (pausing its
  publishing while its inbound side drains), and sheds the oldest
  untransmitted payloads past a hard bound
  (:meth:`~repro.transport.reliability.ReliableChannel.shed_backlog`), so
  one stalled PDA cannot hold the cell's memory hostage.

The guard is quench-aware in both directions: it never duplicates an
advisory the bus's own :class:`~repro.core.quench.QuenchController`
already issued, and it wakes only members it quenched itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.bus import EventBus
from repro.discovery.auth import Authenticator
from repro.discovery.membership import MembershipTable
from repro.discovery.messages import AnnounceBody
from repro.errors import ConfigurationError
from repro.ids import ServiceId
from repro.transport.endpoint import PacketEndpoint


@dataclass
class EdgeStats:
    sweeps: int = 0
    capacity_rejections: int = 0
    quench_advisories: int = 0
    wake_advisories: int = 0
    payloads_shed: int = 0


class CapacityAuthenticator:
    """Admission control: NAK announcements beyond the member capacity.

    Wraps the cell's configured authenticator; the capacity check runs
    first so a full cell never spends authentication work on a device it
    cannot seat.  The membership table is bound after the cell is built
    (the table lives inside :class:`~repro.discovery.service.DiscoveryService`,
    which is constructed with the authenticator already in hand).
    """

    def __init__(self, max_members: int, inner: Authenticator | None = None,
                 stats: EdgeStats | None = None) -> None:
        if max_members < 1:
            raise ConfigurationError(
                f"max_members must be >= 1, got {max_members}")
        self.max_members = max_members
        self.inner = inner
        self.stats = stats if stats is not None else EdgeStats()
        self.table: MembershipTable | None = None

    def bind_table(self, table: MembershipTable) -> None:
        self.table = table

    def authenticate(self, member_id: ServiceId,
                     announce: AnnounceBody) -> tuple[bool, str]:
        if self.table is not None and len(self.table) >= self.max_members:
            self.stats.capacity_rejections += 1
            return False, "cell at member capacity"
        if self.inner is not None:
            return self.inner.authenticate(member_id, announce)
        return True, "ok"


class BackpressureGuard:
    """Per-peer outbound backlog bounds, swept periodically.

    ``quench_backlog`` (advisory) and ``shed_backlog`` (hard bound) are
    counts of unacknowledged payloads on the member's channel;
    ``wake_backlog`` is the level below which an edge-issued quench is
    lifted (hysteresis: wake < quench).
    """

    def __init__(self, bus: EventBus, endpoint: PacketEndpoint, *,
                 quench_backlog: int = 64, wake_backlog: int = 16,
                 shed_backlog: int = 256,
                 stats: EdgeStats | None = None) -> None:
        if not 0 < wake_backlog < quench_backlog <= shed_backlog:
            raise ConfigurationError(
                "backlog bounds must satisfy 0 < wake < quench <= shed, "
                f"got wake={wake_backlog} quench={quench_backlog} "
                f"shed={shed_backlog}")
        self.bus = bus
        self.endpoint = endpoint
        self.quench_backlog = quench_backlog
        self.wake_backlog = wake_backlog
        self.shed_backlog = shed_backlog
        self.stats = stats if stats is not None else EdgeStats()
        self._edge_quenched: set[ServiceId] = set()
        self._capacity_of: Callable[[ServiceId], int] | None = None

    def set_capacity_source(self, capacity_of: Callable[[ServiceId], int]) -> None:
        """Honour per-member declared capacities (discovery's records).

        A member that declared a capacity smaller than the configured
        bounds gets its quench/shed thresholds clamped down to it: a
        4-event sensor is quenched at 4 queued payloads, not at the
        cell-wide 64.
        """
        self._capacity_of = capacity_of

    def _bounds_for(self, member: ServiceId) -> tuple[int, int, int]:
        """(quench, wake, shed) for one member, honouring its capacity."""
        capacity = self._capacity_of(member) if self._capacity_of else 0
        if capacity <= 0:
            return self.quench_backlog, self.wake_backlog, self.shed_backlog
        quench = max(1, min(self.quench_backlog, capacity))
        # Preserve the hysteresis shape (wake < quench <= shed) at any
        # scale; a quench bound of 1 wakes only on a fully-drained queue.
        wake = min(self.wake_backlog, quench - 1)
        shed = max(quench, min(self.shed_backlog, 4 * capacity))
        return quench, wake, shed

    def sweep(self) -> None:
        """One backpressure round over every member channel."""
        self.stats.sweeps += 1
        members = set(self.bus.members())
        # Members purged since the last sweep took their channels (and any
        # edge quench) with them.
        self._edge_quenched &= members
        for member in members:
            proxy = self.bus.proxy_of(member)
            channel = self.endpoint.existing_channel(proxy.member_address)
            backlog = channel.unacked_count() if channel is not None else 0
            quench_at, wake_at, shed_at = self._bounds_for(member)
            if backlog >= quench_at:
                self._quench(member, proxy)
            elif backlog <= wake_at:
                self._wake(member, proxy)
            if channel is not None and backlog > shed_at:
                # Trim the untransmitted tail; in-flight packets stay (the
                # send window bounds them already).
                self.stats.payloads_shed += channel.shed_backlog(shed_at)

    def edge_quenched(self) -> set[ServiceId]:
        """Members currently quenched by the edge (not by the bus)."""
        return set(self._edge_quenched)

    def _quench(self, member: ServiceId, proxy) -> None:
        if member in self._edge_quenched:
            return
        if (self.bus.quench is not None
                and self.bus.quench.is_quenched(member)):
            return          # the bus already told it to stop
        proxy.send_quench(True)
        self._edge_quenched.add(member)
        self.stats.quench_advisories += 1

    def _wake(self, member: ServiceId, proxy) -> None:
        if member not in self._edge_quenched:
            return
        self._edge_quenched.discard(member)
        if (self.bus.quench is not None
                and self.bus.quench.is_quenched(member)):
            return          # the bus still wants it quiet; don't wake
        proxy.send_quench(False)
        self.stats.wake_advisories += 1
