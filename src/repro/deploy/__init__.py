"""Deployment mode: the cell on real UDP sockets and wall-clock time.

* :mod:`repro.deploy.server` — :class:`CellServer`, the assembled cell on
  a :class:`~repro.sim.kernel.RealtimeScheduler` with fd-registered
  sockets, directed beacons, edge admission/backpressure and a healthz
  surface.
* :mod:`repro.deploy.harness` — :class:`LoopbackDevice`, the device half,
  joined by rendezvous.
* :mod:`repro.deploy.edge` — :class:`CapacityAuthenticator` and
  :class:`BackpressureGuard`, the edge controls.
* :mod:`repro.deploy.healthz` — the loopback TCP stats endpoint.
"""

from repro.deploy.edge import (
    BackpressureGuard,
    CapacityAuthenticator,
    EdgeStats,
)
from repro.deploy.harness import LoopbackDevice, make_devices
from repro.deploy.healthz import HealthzEndpoint, read_healthz
from repro.deploy.server import CellServer, ServerConfig

__all__ = [
    "BackpressureGuard",
    "CapacityAuthenticator",
    "CellServer",
    "EdgeStats",
    "HealthzEndpoint",
    "LoopbackDevice",
    "ServerConfig",
    "make_devices",
    "read_healthz",
]
