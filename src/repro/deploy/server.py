"""Deployment mode: the cell on real UDP sockets and wall-clock time.

Everything below the examples has always run identically on the virtual
clock (:class:`~repro.sim.kernel.Simulator`) and the wall clock
(:class:`~repro.sim.kernel.RealtimeScheduler`) — the paper's prototype ran
on real sockets, and the one code spine here does too.  This module is the
missing assembly step: a :class:`CellServer` builds a
:class:`~repro.transport.udp.UdpTransport`, stands a full
:class:`~repro.smc.cell.SelfManagedCell` on top of it, and wires the
pieces a real deployment needs that a simulation never exercises:

* **fd registration** — every transport socket (unicast *and* the
  broadcast/discovery listener) registers with the scheduler's selector,
  so the run loop interleaves timer dispatch (beacons, sweeps, RTOs,
  autonomic ticks) with socket drains in one thread.
* **directed beacons** — loopback and most cloud fabrics have no
  broadcast domain, so the server keeps the transport's stand-in peer
  list synced to the membership table (refreshed on every
  ``smc.member.*`` event): admitted devices keep hearing beacons, which
  keeps their out-of-range watchdogs fed.
* **edge admission and backpressure** — a
  :class:`~repro.deploy.edge.CapacityAuthenticator` bounds membership and
  a :class:`~repro.deploy.edge.BackpressureGuard` sweeps per-peer
  outbound backlogs (quench advisory, hysteresis wake, hard shed).
* **healthz** — a loopback TCP :class:`~repro.deploy.healthz.HealthzEndpoint`
  answers every connection with one JSON :meth:`~CellServer.snapshot`
  (members and their lifecycle states, BusStats, aggregate ChannelStats,
  transport counters, shard loads, edge stats, autonomic audit tail).

Usage::

    server = CellServer(ServerConfig(cell=CellConfig(cell_name="ward")))
    server.start()
    server.serve_forever()        # or run_for(seconds) from a harness
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.core.bootstrap import format_address
from repro.core.events import Event
from repro.core.sharding import ShardedEventBus
from repro.core.workers import DEFAULT_START_METHOD, WorkerPoolExecutor
from repro.deploy.edge import BackpressureGuard, CapacityAuthenticator, EdgeStats
from repro.deploy.healthz import HealthzEndpoint
from repro.discovery.auth import Authenticator
from repro.errors import ConfigurationError
from repro.matching.filters import Filter
from repro.sim.kernel import RealtimeScheduler
from repro.smc.cell import CellConfig, SelfManagedCell
from repro.transport.udp import DEFAULT_DISCOVERY_PORT, UdpTransport


@dataclass(frozen=True)
class ServerConfig:
    """Deployment knobs around one cell."""

    cell: CellConfig
    #: UDP bind for the cell core (port 0 = OS-chosen, as in the paper).
    bind_host: str = "127.0.0.1"
    bind_port: int = 0
    #: Discovery port the broadcast listener binds (0 = OS-chosen; useful
    #: for tests and multi-cell hosts).
    discovery_port: int = DEFAULT_DISCOVERY_PORT
    listen_for_broadcast: bool = True
    #: Edge admission bound; None admits without a capacity check.
    max_members: int | None = None
    #: BackpressureGuard bounds and sweep period (see deploy.edge).
    quench_backlog: int = 64
    wake_backlog: int = 16
    shed_backlog: int = 256
    guard_period_s: float = 0.25
    #: Healthz surface (port 0 = OS-chosen); None disables it.
    healthz_host: str | None = "127.0.0.1"
    healthz_port: int = 0
    #: Autonomic audit entries included in a snapshot.
    audit_tail: int = 20
    #: Keep the broadcast-domain stand-in synced to membership, so
    #: devices on broadcast-free networks still receive beacons.
    directed_beacons: bool = True
    #: Addresses beaconed even before any member joins (bootstrap seeds).
    broadcast_peers: list[tuple[str, int]] = field(default_factory=list)
    #: Match-worker processes (0 = inline matching on the core thread).
    #: Requires a sharded bus (``cell.shards > 1``); the pool is spawned
    #: in :meth:`CellServer.start`, respawned by the guard sweep when a
    #: worker dies, and drained in :meth:`CellServer.stop`.
    workers: int = 0
    #: Worker start method; ``spawn`` is the fork-safe default (workers
    #: inherit none of the server's sockets or pollables).
    worker_start_method: str = DEFAULT_START_METHOD

    def __post_init__(self) -> None:
        if self.guard_period_s <= 0:
            raise ConfigurationError(
                f"guard_period_s must be > 0, got {self.guard_period_s}")
        if self.audit_tail < 0:
            raise ConfigurationError(
                f"audit_tail must be >= 0, got {self.audit_tail}")
        if self.workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {self.workers}")


class CellServer:
    """A SelfManagedCell assembled onto real sockets and the wall clock."""

    def __init__(self, config: ServerConfig,
                 scheduler: RealtimeScheduler | None = None,
                 authenticator: Authenticator | None = None) -> None:
        self.config = config
        self.scheduler = scheduler if scheduler is not None \
            else RealtimeScheduler()
        self.transport = UdpTransport(
            bind_host=config.bind_host, bind_port=config.bind_port,
            discovery_port=config.discovery_port,
            listen_for_broadcast=config.listen_for_broadcast,
            directed_only=config.directed_beacons)
        if config.broadcast_peers:
            self.transport.set_broadcast_peers(config.broadcast_peers)

        self.edge_stats = EdgeStats()
        self._capacity: CapacityAuthenticator | None = None
        if config.max_members is not None:
            self._capacity = CapacityAuthenticator(
                config.max_members, inner=authenticator,
                stats=self.edge_stats)
            authenticator = self._capacity

        self.cell = SelfManagedCell(self.transport, self.scheduler,
                                    config.cell, authenticator=authenticator)
        if self._capacity is not None:
            # The membership table is born inside DiscoveryService, after
            # the authenticator was handed over — bind it now.
            self._capacity.bind_table(self.cell.discovery.table)

        self.guard = BackpressureGuard(
            self.cell.bus, self.cell.endpoint,
            quench_backlog=config.quench_backlog,
            wake_backlog=config.wake_backlog,
            shed_backlog=config.shed_backlog,
            stats=self.edge_stats)
        # Honour per-member capacity declarations from ANNOUNCE/heartbeats.
        self.guard.set_capacity_source(self.cell.discovery.capacity_of)

        self.healthz: HealthzEndpoint | None = None
        if config.healthz_host is not None:
            self.healthz = HealthzEndpoint(self.snapshot,
                                           host=config.healthz_host,
                                           port=config.healthz_port)

        if config.directed_beacons:
            self.cell.bus.subscribe_local(
                Filter.for_type_prefix("smc.member"),
                self._on_membership_change)

        #: Match-worker pool; built in :meth:`start` so worker processes
        #: are spawned only once the deployment is actually live.
        self.worker_pool: WorkerPoolExecutor | None = None
        if config.workers:
            if not isinstance(self.cell.bus, ShardedEventBus):
                raise ConfigurationError(
                    "match workers require a sharded bus — set "
                    f"cell.shards > 1 (got workers={config.workers})")
            if self.cell.bus.sharded.engine_spec is None:
                raise ConfigurationError(
                    "match workers need a named engine to build replicas")

        self._guard_timer = None
        self._started = False
        self._closed = False
        self._started_at: float | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Register sockets, start the cell, begin edge sweeps."""
        if self._started:
            raise ConfigurationError("server already started")
        self._started = True
        self._started_at = self.scheduler.now()
        self.scheduler.register_pollables(self.transport.pollables())
        if self.healthz is not None:
            self.scheduler.register_pollable(self.healthz)
        self.cell.start()
        if self.config.workers:
            self.worker_pool = WorkerPoolExecutor(
                self.cell.bus.sharded, self.config.workers,
                start_method=self.config.worker_start_method)
        self._guard_timer = self.scheduler.every(self.config.guard_period_s,
                                                 self._sweep)

    def _sweep(self) -> None:
        """One guard tick: edge backpressure plus worker supervision."""
        self.guard.sweep()
        if self.worker_pool is not None:
            self.worker_pool.ensure_alive()

    def run_for(self, duration_s: float) -> None:
        """Drive the cell for a bounded wall-clock slice (harness mode)."""
        self.scheduler.run_for(duration_s)

    def serve_forever(self) -> None:
        """Run until :meth:`stop` is called (e.g. from a signal handler)."""
        while self._started:
            self.scheduler.run_for(3600.0)

    def stop(self) -> None:
        """Stop beaconing and sweeping; sockets stay open until close()."""
        if not self._started:
            return
        self._started = False
        if self._guard_timer is not None:
            self._guard_timer.cancel()
            self._guard_timer = None
        if self.worker_pool is not None:
            # Drain the pool first: matching falls back to the host's own
            # engines (always fully registered), then workers exit.
            self.worker_pool.close()
            self.worker_pool = None
        self.cell.stop()
        self.scheduler.stop()

    def close(self) -> None:
        """Stop (if needed) and release every socket.  Idempotent: a
        second close must not unregister already-released pollables."""
        self.stop()
        if self._closed:
            return
        self._closed = True
        if self.healthz is not None:
            self.scheduler.unregister_pollable(self.healthz)
            self.healthz.close()
        for pollable in self.transport.pollables():
            self.scheduler.unregister_pollable(pollable)
        self.transport.close()

    @property
    def started(self) -> bool:
        return self._started

    @property
    def address(self) -> tuple[str, int]:
        """The cell core's unicast (host, port) — the rendezvous address."""
        return self.transport.local_address

    @property
    def healthz_address(self) -> tuple[str, int] | None:
        return self.healthz.address if self.healthz is not None else None

    # -- directed beacons ----------------------------------------------------

    def _on_membership_change(self, _event: Event) -> None:
        self.refresh_broadcast_domain()

    def refresh_broadcast_domain(self) -> None:
        """Point the stand-in broadcast at every member's current address.

        Called on every ``smc.member.*`` event, so joins, purges and roams
        (Member Moved) immediately redirect beacon traffic.  Seed peers
        stay in the domain so not-yet-joined devices keep hearing us.
        """
        peers = list(self.config.broadcast_peers)
        for record in self.cell.discovery.table.members():
            if record.address not in peers:
                peers.append(record.address)
        self.transport.set_broadcast_peers(peers)

    # -- observability -------------------------------------------------------

    def snapshot(self) -> dict:
        """One JSON-ready view of the whole cell (the healthz body)."""
        now = self.scheduler.now()
        discovery = self.cell.discovery
        members = [{
            "member": int(record.member_id),
            "name": record.name,
            "device_type": record.device_type,
            "address": format_address(record.address),
            "state": record.state.value,
            "lifecycle": record.lifecycle.value,
            "capacity": record.capacity,
            "silence_s": round(record.silence(now), 3),
        } for record in discovery.table.members()]
        snapshot = {
            "cell": self.config.cell.cell_name,
            "engine": self.cell.engine.name,
            "started": self._started,
            "uptime_s": (round(now - self._started_at, 3)
                         if self._started_at is not None else 0.0),
            "address": format_address(self.transport.local_address),
            "pollables": self.scheduler.pollable_count(),
            "member_count": len(members),
            "lifecycle_counts": discovery.table.lifecycle_counts(),
            "members": members,
            "bus": asdict(self.cell.bus.stats),
            "channels": asdict(self.cell.endpoint.channel_stats()),
            "transport": asdict(self.transport.stats),
            "discovery": asdict(discovery.stats),
            "edge": asdict(self.edge_stats),
            "edge_quenched": sorted(int(m)
                                    for m in self.guard.edge_quenched()),
        }
        if isinstance(self.cell.bus, ShardedEventBus):
            snapshot["shard_loads"] = self.cell.bus.shard_loads()
            snapshot["shard_events"] = self.cell.bus.sharded.shard_events()
        if self.worker_pool is not None:
            snapshot["workers"] = self.worker_pool.stats_dict()
        if self.cell.autonomic is not None:
            tail = list(self.cell.autonomic.audit)[-self.config.audit_tail:]
            snapshot["autonomic"] = {
                "ticks": self.cell.autonomic.ticks,
                "actuations": len(self.cell.autonomic.audit),
                "audit_tail": [asdict(actuation) for actuation in tail],
            }
        return snapshot

    def __repr__(self) -> str:
        state = "started" if self._started else "stopped"
        return (f"<CellServer {self.config.cell.cell_name!r} "
                f"addr={format_address(self.transport.local_address)} "
                f"members={len(self.cell.discovery.table)} {state}>")
