"""Client-side harness for deployed cells: one device on real sockets.

A :class:`LoopbackDevice` is the device half of deployment mode — the
stack a real sensor or PDA application would run (UdpTransport →
PacketEndpoint → DiscoveryAgent + BusClient), assembled onto the same
:class:`~repro.sim.kernel.RealtimeScheduler` so one selector loop drives
any number of devices alongside (or across the loopback from) a
:class:`~repro.deploy.server.CellServer`.

Devices join by rendezvous (:meth:`~repro.discovery.agent.DiscoveryAgent.
announce_to` at the server's unicast address) because loopback has no
broadcast domain; once admitted, the server's directed beacons keep the
agent's out-of-range watchdog fed, and the BusClient is pointed at the
core automatically on JOIN_ACK.

This is what the localhost benchmark and the CI smoke job drive by the
hundred.
"""

from __future__ import annotations

from typing import Callable

from repro.core.client import BusClient
from repro.core.events import Event
from repro.discovery.agent import AgentConfig, DiscoveryAgent
from repro.matching.filters import Filter
from repro.sim.kernel import RealtimeScheduler
from repro.transport.base import Address
from repro.transport.endpoint import PacketEndpoint
from repro.transport.udp import UdpTransport


class LoopbackDevice:
    """One device-side stack on real UDP, joined by rendezvous."""

    def __init__(self, scheduler: RealtimeScheduler, core_address: Address,
                 config: AgentConfig, bind_host: str = "127.0.0.1",
                 window: int | None = None, batch: int = 0) -> None:
        if batch < 0:
            raise ValueError(f"batch must be >= 0, got {batch}")
        self.scheduler = scheduler
        self.core_address = core_address
        # Devices never bind the discovery port — beacons arrive directed
        # at the unicast socket.
        self.transport = UdpTransport(bind_host=bind_host,
                                      listen_for_broadcast=False)
        endpoint_kwargs = {} if window is None else {"window": window}
        self.endpoint = PacketEndpoint(self.transport, scheduler,
                                       **endpoint_kwargs)
        self.agent = DiscoveryAgent(self.endpoint, scheduler, config)
        self.client = BusClient(self.endpoint, scheduler, bus_address=None)
        self.agent.on_joined = self._on_joined
        self._registered = False
        #: Publishes buffered per flush; 0 sends each publish immediately.
        #: Buffered publishes ride one BATCH frame via
        #: :meth:`~repro.core.client.BusClient.publish_batch` — one packet
        #: per flush instead of one per event, which is what lets a
        #: harness drive thousands of devices through one socket.
        self.batch = batch
        self._buffer: list[tuple[str, dict | None]] = []

    def _on_joined(self, _cell_name: str, core_address: Address) -> None:
        self.client.bus_address = core_address

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Register the socket and announce at the rendezvous address."""
        if not self._registered:
            self.scheduler.register_pollables(self.transport.pollables())
            self._registered = True
        self.agent.announce_to(self.core_address)

    def leave(self) -> None:
        """Politely LEAVE the cell (the agent stays constructed)."""
        self.flush()
        self.agent.stop()
        self.client.bus_address = None

    def leave_gracefully(self, reason: str = "drain") -> None:
        """Send LEAVE_INTENT and let the cell drain our queue.

        Pair with :meth:`close` (or :meth:`leave`) once the cell purges
        us — e.g. after waiting for delivery to quiesce.
        """
        self.flush()
        self.agent.leave_gracefully(reason)

    def close(self) -> None:
        self.flush()
        self.agent.stop()
        if self._registered:
            for pollable in self.transport.pollables():
                self.scheduler.unregister_pollable(pollable)
            self._registered = False
        self.transport.close()

    # -- fault-injection hooks ----------------------------------------------

    def crash(self) -> None:
        """Die without a word: drop the socket, send no LEAVE.

        The cell sees an abrupt ghost — exactly what the chaos harness
        needs to prove the DEGRADED detection and purge paths.  The agent
        object survives (for inspecting its stats) but is stopped.
        """
        if self._registered:
            for pollable in self.transport.pollables():
                self.scheduler.unregister_pollable(pollable)
            self._registered = False
        self.agent.freeze()          # no LEAVE, no further heartbeats
        self.transport.close()
        self.client.bus_address = None

    def freeze(self) -> None:
        """Simulate a process stall: stop reading the socket and stop all
        agent timers, but keep every resource for :meth:`thaw`."""
        if self._registered:
            for pollable in self.transport.pollables():
                self.scheduler.unregister_pollable(pollable)
            self._registered = False
        self.agent.freeze()

    def thaw(self) -> None:
        """Resume after :meth:`freeze`: re-register the socket, restart
        the agent's timers."""
        if not self._registered:
            self.scheduler.register_pollables(self.transport.pollables())
            self._registered = True
        self.agent.thaw()

    # -- conveniences --------------------------------------------------------

    @property
    def joined(self) -> bool:
        return self.agent.joined

    @property
    def name(self) -> str:
        return self.agent.config.name

    @property
    def service_id(self) -> int:
        return self.endpoint.service_id

    def publish(self, event_type: str, attributes: dict | None = None):
        """Publish one event; buffered until :meth:`flush` when batching.

        Unbatched, this is the old behaviour (one reliable payload per
        publish, returns the stamped event or None).  With ``batch > 0``
        the event joins the buffer and None is returned — events are
        stamped at flush time, all with one send.
        """
        if not self.batch:
            return self.client.publish(event_type, attributes)
        self._buffer.append((event_type, attributes))
        if len(self._buffer) >= self.batch:
            self.flush()
        return None

    def flush(self) -> list[Event]:
        """Send every buffered publish as one BATCH; returns the events."""
        if not self._buffer:
            return []
        items, self._buffer = self._buffer, []
        return self.client.publish_batch(items)

    @property
    def pending(self) -> int:
        """Publishes buffered and not yet flushed."""
        return len(self._buffer)

    def subscribe(self, filters: Filter,
                  callback: Callable[[Event], None]) -> int:
        return self.client.subscribe(filters, callback)


def make_devices(scheduler: RealtimeScheduler, core_address: Address,
                 count: int, *, device_type: str = "service",
                 name_prefix: str = "dev",
                 announce_retry_s: float = 0.2,
                 beacon_timeout_s: float = 10.0,
                 batch: int = 0) -> list[LoopbackDevice]:
    """Build ``count`` devices aimed at one cell (benchmark/CI helper)."""
    return [
        LoopbackDevice(scheduler, core_address,
                       AgentConfig(name=f"{name_prefix}-{index}",
                                   device_type=device_type,
                                   announce_retry_s=announce_retry_s,
                                   beacon_timeout_s=beacon_timeout_s),
                       batch=batch)
        for index in range(count)
    ]
