"""Local healthz/stats surface for a deployed cell.

A tiny TCP listener on loopback that answers every connection with one
JSON snapshot of the cell (HTTP/1.0 framing so ``curl`` and load-balancer
probes work) and closes.  It never reads the request — the surface is a
"connect and read" diagnostic port, which keeps it a pure
:class:`~repro.sim.kernel.Pollable`: the listening socket registers with
the :class:`~repro.sim.kernel.RealtimeScheduler` selector next to the UDP
sockets, and each accept/respond runs inside the same single-threaded run
loop as the protocol stack, so a snapshot is always internally consistent
(no counters torn mid-update).

The snapshot itself is produced by a caller-supplied callable — the
server layer decides what "health" means (members, BusStats,
ChannelStats, shard loads, autonomic audit tail); this module only moves
the bytes.

JSON field reference (the body :meth:`~repro.deploy.server.CellServer.
snapshot` produces)::

    cell              cell name (CellConfig.cell_name)
    engine            matching engine name ("forwarding", "siena", ...)
    started           bool, between start() and stop()
    uptime_s          seconds since start()
    address           the core's unicast "host:port" rendezvous address
    pollables         fds registered with the scheduler selector
    member_count      admitted members (all lifecycle states)
    lifecycle_counts  members per lifecycle state, e.g.
                      {"joining": 0, "healthy": 4, "degraded": 1,
                       "draining": 0} — GONE members left the table
    members           list of per-member objects:
        member          integer service id
        name            announced device name
        device_type     announced device type
        address         current "host:port" (follows roams)
        state           masking state: "active" | "silent"
        lifecycle       health state: "joining" | "healthy" |
                        "degraded" | "draining"
        capacity        declared inbound event capacity (0 = undeclared)
        silence_s       seconds since last heard
    bus               BusStats (published, matched, delivered_local,
                      delivered_remote, duplicates_dropped, unmatched,
                      from_unknown_member, subscriptions_active,
                      members_active, purged_members)
    channels          aggregate ChannelStats over every member channel
    transport         UDP socket counters
    discovery         DiscoveryStats (admissions, purges, degradations,
                      drains, drains_completed, drain_timeouts, ...)
    edge              EdgeStats (capacity_rejections, quench/wake
                      advisories, payloads_shed, sweeps)
    edge_quenched     member ids currently quenched by the edge guard
    shard_loads       (sharded bus only) subscriptions per shard
    shard_events      (sharded bus only) events matched per shard
    workers           (worker pool only) pool stats incl. live pids
    autonomic         (autonomic cell only) ticks, actuations, audit tail
"""

from __future__ import annotations

import errno
import json
import socket
from typing import Callable

from repro.errors import TransportError

SnapshotFn = Callable[[], dict]

_RESPONSE_TEMPLATE = (
    "HTTP/1.0 200 OK\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: {length}\r\n"
    "Connection: close\r\n"
    "\r\n"
)


class HealthzEndpoint:
    """Serves JSON snapshots over loopback TCP; a scheduler pollable."""

    def __init__(self, snapshot: SnapshotFn, host: str = "127.0.0.1",
                 port: int = 0, *, send_timeout_s: float = 1.0) -> None:
        self._snapshot = snapshot
        self._send_timeout_s = send_timeout_s
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, port))
        except OSError as exc:
            self._listener.close()
            raise TransportError(
                f"cannot bind healthz {host}:{port}: {exc}") from exc
        self._listener.listen(16)
        self._listener.setblocking(False)
        # Fork-safety: never leak the healthz listener into match workers.
        self._listener.set_inheritable(False)
        self.requests_served = 0
        self.errors = 0

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port is OS-chosen when configured 0."""
        return self._listener.getsockname()

    # -- Pollable protocol -------------------------------------------------

    def fileno(self) -> int:
        return self._listener.fileno()

    def on_readable(self) -> None:
        """Accept and answer every queued connection."""
        while True:
            try:
                conn, _peer = self._listener.accept()
            except BlockingIOError:
                return
            except OSError as exc:
                if exc.errno in (errno.EAGAIN, errno.EWOULDBLOCK):
                    return
                raise TransportError(f"healthz accept failed: {exc}") from exc
            self._respond(conn)

    # -- internals ---------------------------------------------------------

    def _respond(self, conn: socket.socket) -> None:
        try:
            body = json.dumps(self._snapshot()).encode("utf-8")
            header = _RESPONSE_TEMPLATE.format(length=len(body))
            conn.settimeout(self._send_timeout_s)
            conn.sendall(header.encode("ascii") + body)
            self.requests_served += 1
        except OSError:
            # A probe that vanished mid-response is the client's problem;
            # counted, never fatal to the run loop.
            self.errors += 1
        finally:
            conn.close()

    def close(self) -> None:
        self._listener.close()


def read_healthz(address: tuple[str, int], timeout_s: float = 2.0,
                 pump: Callable[[], None] | None = None) -> dict:
    """Client half: connect, read one snapshot, parse the JSON body.

    Used by the localhost harness and the CI smoke job.  When the caller
    runs in the *same* thread as the server's scheduler loop (the
    harness/test pattern), pass a ``pump`` that drives the loop — e.g.
    ``lambda: server.run_for(0.2)`` — so the accept and send happen
    between the connect and the read.  Against a server running in
    another process, leave it None: the server sends the full response
    and closes as soon as its loop accepts, so read-to-EOF never stalls.
    """
    with socket.create_connection(address, timeout=timeout_s) as sock:
        if pump is not None:
            pump()
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks)
    header, _, body = raw.partition(b"\r\n\r\n")
    if not body:
        raise TransportError(f"healthz response truncated: {raw[:80]!r}")
    return json.loads(body.decode("utf-8"))
