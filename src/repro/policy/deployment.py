"""Policy deployment on discovery events (paper Section II-A).

"When a device is discovered and granted membership of an SMC, the
appropriate policies, based on device type, are deployed to it.  This is
triggered by a discovery event."

The deployer watches New Member / Purge Member events and manages two
kinds of deployment:

* **shared policies** registered per device type: activated when the first
  member of that type joins, disabled again when the last leaves (the cell
  does not evaluate rules that no present device can satisfy);
* **per-member policies** produced by a template callable, parameterised
  with the member's identity (e.g. a threshold rule scoped to one
  sensor's readings); these are removed outright when the member is
  purged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.bus import EventBus
from repro.core.events import (
    NEW_MEMBER_TYPE,
    POLICY_DEPLOYED_TYPE,
    PURGE_MEMBER_TYPE,
    Event,
)
from repro.errors import PolicyError
from repro.ids import ServiceId
from repro.matching.filters import Filter
from repro.policy.engine import PolicyEngine
from repro.policy.model import ObligationPolicy

#: template(member_id, member_name) -> policies for that member
MemberTemplate = Callable[[ServiceId, str], list[ObligationPolicy]]


@dataclass
class DeployerStats:
    deployments: int = 0
    retractions: int = 0


@dataclass
class _MemberInfo:
    name: str
    device_type: str
    policy_names: list[str]


class PolicyDeployer:
    """Deploys policies in reaction to membership events."""

    def __init__(self, engine: PolicyEngine, bus: EventBus) -> None:
        self.engine = engine
        self.bus = bus
        self.stats = DeployerStats()
        self._shared: dict[str, list[ObligationPolicy]] = {}
        self._templates: dict[str, MemberTemplate] = {}
        self._type_counts: dict[str, int] = {}
        self._members: dict[ServiceId, _MemberInfo] = {}
        self._publisher = bus.local_publisher("policy-deployer")
        self._subs = [
            bus.subscribe_local(Filter.where(NEW_MEMBER_TYPE),
                                self._on_new_member),
            bus.subscribe_local(Filter.where(PURGE_MEMBER_TYPE),
                                self._on_purge_member),
        ]

    # -- registration ----------------------------------------------------

    def register_shared(self, device_type: str,
                        policies: list[ObligationPolicy]) -> None:
        """Policies activated while at least one such device is present.

        They are loaded into the engine immediately but *disabled*; the
        first member of the type enables them.
        """
        self._shared.setdefault(device_type, [])
        for policy in policies:
            self._shared[device_type].append(policy)
            policy.enabled = False
            self.engine.add_obligation(policy)

    def register_template(self, device_type: str,
                          template: MemberTemplate) -> None:
        """Per-member policy factory for a device type."""
        if device_type in self._templates:
            raise PolicyError(
                f"template already registered for {device_type!r}")
        self._templates[device_type] = template

    # -- membership reactions ------------------------------------------------

    def _on_new_member(self, event: Event) -> None:
        member_raw = event.get("member")
        if not isinstance(member_raw, int):
            return
        member = ServiceId(member_raw)
        if member in self._members:
            return
        name = str(event.get("name", ""))
        device_type = str(event.get("device_type", ""))
        info = _MemberInfo(name=name, device_type=device_type,
                           policy_names=[])
        self._members[member] = info

        count = self._type_counts.get(device_type, 0)
        self._type_counts[device_type] = count + 1
        deployed: list[str] = []
        if count == 0:
            for policy in self._shared.get(device_type, []):
                self.engine.enable(policy.name)
                deployed.append(policy.name)

        template = self._templates.get(device_type)
        if template is not None:
            for policy in template(member, name):
                self.engine.add_obligation(policy)
                info.policy_names.append(policy.name)
                deployed.append(policy.name)

        if deployed:
            self.stats.deployments += 1
            self._publisher.publish(POLICY_DEPLOYED_TYPE, {
                "member": int(member), "name": name,
                "device_type": device_type,
                "policies": ",".join(deployed),
            })

    def _on_purge_member(self, event: Event) -> None:
        member_raw = event.get("member")
        if not isinstance(member_raw, int):
            return
        member = ServiceId(member_raw)
        info = self._members.pop(member, None)
        if info is None:
            return
        for policy_name in info.policy_names:
            self.engine.remove_obligation(policy_name)
        remaining = self._type_counts.get(info.device_type, 1) - 1
        self._type_counts[info.device_type] = max(0, remaining)
        if remaining == 0:
            for policy in self._shared.get(info.device_type, []):
                self.engine.disable(policy.name)
        self.stats.retractions += 1

    def close(self) -> None:
        for sub_id in self._subs:
            self.bus.unsubscribe_local(sub_id)
        self._subs.clear()
