"""The policy evaluation engine.

Each enabled obligation policy is one subscription on the event bus; when a
matching event arrives the engine checks the condition, checks
authorisation for every action (negative authorisations override positive;
the default when no policy applies is configurable), and executes the
actions in order through the :class:`~repro.policy.actions.ActionExecutor`.

Policies are runtime-managed objects: ``add`` / ``remove`` / ``enable`` /
``disable`` take effect immediately, without touching any component —
"policies can be added, removed, enabled and disabled to change the
behaviour of cell components without reprogramming them".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bus import EventBus
from repro.core.events import POLICY_VIOLATION_TYPE, Event
from repro.errors import PolicyConflictError, PolicyError
from repro.policy.actions import ActionExecutor
from repro.policy.model import (
    AuthorisationPolicy,
    ObligationPolicy,
    PolicySet,
    RoleTable,
)


@dataclass
class EngineStats:
    events_evaluated: int = 0
    conditions_failed: int = 0
    actions_executed: int = 0
    actions_denied: int = 0
    action_failures: int = 0


class PolicyEngine:
    """Hosts and evaluates a cell's policies."""

    def __init__(self, bus: EventBus, executor: ActionExecutor | None = None,
                 *, default_authorise: bool = True) -> None:
        self.bus = bus
        self.executor = executor if executor is not None else ActionExecutor(bus)
        self.default_authorise = default_authorise
        self.roles = RoleTable()
        self.stats = EngineStats()
        self._obligations: dict[str, ObligationPolicy] = {}
        self._subscriptions: dict[str, int] = {}     # policy name -> bus sub
        self._authorisations: dict[str, AuthorisationPolicy] = {}
        self._publisher = bus.local_publisher("policy-service")

    # -- obligation lifecycle ------------------------------------------------

    def add_obligation(self, policy: ObligationPolicy) -> None:
        if policy.name in self._obligations:
            raise PolicyConflictError(
                f"obligation {policy.name!r} already loaded")
        self._obligations[policy.name] = policy
        if policy.enabled:
            self._activate(policy)

    def remove_obligation(self, name: str) -> ObligationPolicy:
        policy = self._require(name)
        self._deactivate(policy)
        del self._obligations[name]
        return policy

    def enable(self, name: str) -> None:
        policy = self._require(name)
        if not policy.enabled:
            policy.enabled = True
            self._activate(policy)

    def disable(self, name: str) -> None:
        policy = self._require(name)
        if policy.enabled:
            policy.enabled = False
            self._deactivate(policy)

    def obligations(self) -> list[str]:
        return sorted(self._obligations)

    def is_enabled(self, name: str) -> bool:
        return self._require(name).enabled

    def _require(self, name: str) -> ObligationPolicy:
        try:
            return self._obligations[name]
        except KeyError:
            raise PolicyError(f"no obligation named {name!r}") from None

    def _activate(self, policy: ObligationPolicy) -> None:
        sub_id = self.bus.subscribe_local(
            policy.event_filter,
            lambda event, p=policy: self._on_event(p, event))
        self._subscriptions[policy.name] = sub_id

    def _deactivate(self, policy: ObligationPolicy) -> None:
        sub_id = self._subscriptions.pop(policy.name, None)
        if sub_id is not None:
            self.bus.unsubscribe_local(sub_id)

    # -- authorisation ---------------------------------------------------

    def add_authorisation(self, policy: AuthorisationPolicy) -> None:
        if policy.name in self._authorisations:
            raise PolicyConflictError(
                f"authorisation {policy.name!r} already loaded")
        self._authorisations[policy.name] = policy

    def remove_authorisation(self, name: str) -> None:
        if name not in self._authorisations:
            raise PolicyError(f"no authorisation named {name!r}")
        del self._authorisations[name]

    def is_authorised(self, subject: str, target: str, operation: str) -> bool:
        """Negative overrides positive; otherwise the engine default."""
        applicable = [p for p in self._authorisations.values()
                      if p.applies(subject, target, operation)]
        if any(not p.positive for p in applicable):
            return False
        if any(p.positive for p in applicable):
            return True
        return self.default_authorise

    # -- bulk loading -----------------------------------------------------

    def load(self, policy_set: PolicySet) -> None:
        """Load a parsed policy file: roles, authorisations, obligations."""
        self.roles.merge(policy_set.roles)
        for authorisation in policy_set.authorisations:
            self.add_authorisation(authorisation)
        for obligation in policy_set.obligations:
            self.add_obligation(obligation)

    # -- evaluation ------------------------------------------------------

    def _on_event(self, policy: ObligationPolicy, event: Event) -> None:
        self.stats.events_evaluated += 1
        view = event.attrs_view()
        if not policy.condition_holds(view):
            self.stats.conditions_failed += 1
            return
        for action in policy.actions:
            target = action.target if action.target is not None else policy.target
            if not self.is_authorised(policy.subject, target, action.operation):
                self.stats.actions_denied += 1
                self._publisher.publish(POLICY_VIOLATION_TYPE, {
                    "policy": policy.name,
                    "operation": action.operation,
                    "subject": policy.subject,
                    "target": target,
                })
                continue
            try:
                params = action.resolve_params(view)
            except PolicyError:
                self.stats.action_failures += 1
                continue
            self.executor.execute(action.operation, target, params)
            self.stats.actions_executed += 1
