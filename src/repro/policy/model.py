"""Policy objects: obligations, authorisations, roles, actions.

The model follows Ponder's split:

* an **obligation policy** is an event-condition-action rule: *on* an event
  matching a filter, *if* a condition over the event's attributes holds,
  *do* a sequence of actions, performed by a *subject* role upon a *target*
  role;
* an **authorisation policy** permits (``auth+``) or forbids (``auth-``) a
  subject role from performing named operations on a target role; negative
  authorisations override positive ones;
* a **role table** maps role names to the device types that fill them, so
  policies speak of ``nurse`` and ``hr-sensor`` rather than of transport
  addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import PolicyError
from repro.matching.filters import Filter
from repro.transport.wire import Value


class AttrRef:
    """A ``$name`` parameter: resolved from the triggering event at run time."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise PolicyError("attribute reference needs a name")
        self.name = name

    def resolve(self, attributes: Mapping[str, Value]) -> Value:
        if self.name not in attributes:
            raise PolicyError(
                f"event carries no attribute {self.name!r} for $-reference")
        return attributes[self.name]

    def __eq__(self, other) -> bool:
        return isinstance(other, AttrRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("AttrRef", self.name))

    def __repr__(self) -> str:
        return f"${self.name}"


ParamValue = Value | AttrRef


@dataclass(frozen=True)
class ActionSpec:
    """One action of an obligation's ``do`` clause."""

    operation: str
    params: tuple[tuple[str, ParamValue], ...] = ()
    #: Role the action is applied to; None inherits the policy's target.
    target: str | None = None

    def __post_init__(self) -> None:
        if not self.operation:
            raise PolicyError("action needs an operation name")

    def resolve_params(self, attributes: Mapping[str, Value]) -> dict[str, Value]:
        """Substitute ``$attr`` references from the triggering event."""
        resolved: dict[str, Value] = {}
        for name, value in self.params:
            resolved[name] = (value.resolve(attributes)
                              if isinstance(value, AttrRef) else value)
        return resolved


@dataclass
class ObligationPolicy:
    """An event-condition-action rule."""

    name: str
    event_filter: Filter
    actions: tuple[ActionSpec, ...]
    condition: Filter | None = None
    subject: str = "smc"
    target: str = "smc"
    enabled: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise PolicyError("obligation policy needs a name")
        if not self.actions:
            raise PolicyError(f"obligation {self.name!r} has no actions")

    def condition_holds(self, attributes: Mapping[str, Value]) -> bool:
        return self.condition is None or self.condition.matches(attributes)


@dataclass(frozen=True)
class AuthorisationPolicy:
    """``auth+`` / ``auth-`` over (subject role, target role, operations)."""

    name: str
    positive: bool
    subject: str
    target: str
    operations: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.operations:
            raise PolicyError(f"authorisation {self.name!r} names no operations")

    def applies(self, subject: str, target: str, operation: str) -> bool:
        return (_role_matches(self.subject, subject)
                and _role_matches(self.target, target)
                and ("*" in self.operations or operation in self.operations))


def _role_matches(pattern: str, actual: str) -> bool:
    return pattern == "*" or pattern == actual


class RoleTable:
    """Role name -> device types filling that role."""

    def __init__(self) -> None:
        self._roles: dict[str, set[str]] = {}

    def assign(self, role: str, device_types: list[str] | set[str]) -> None:
        self._roles.setdefault(role, set()).update(device_types)

    def device_types(self, role: str) -> set[str]:
        return set(self._roles.get(role, set()))

    def roles_of(self, device_type: str) -> set[str]:
        return {role for role, types in self._roles.items()
                if device_type in types}

    def roles(self) -> list[str]:
        return sorted(self._roles)

    def merge(self, other: "RoleTable") -> None:
        for role in other.roles():
            self.assign(role, other.device_types(role))


@dataclass
class PolicySet:
    """The result of parsing a policy source file."""

    obligations: list[ObligationPolicy] = field(default_factory=list)
    authorisations: list[AuthorisationPolicy] = field(default_factory=list)
    roles: RoleTable = field(default_factory=RoleTable)

    def obligation(self, name: str) -> ObligationPolicy:
        for policy in self.obligations:
            if policy.name == name:
                return policy
        raise PolicyError(f"no obligation named {name!r}")
