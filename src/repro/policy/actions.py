"""Action execution.

An obligation's actions become *management command events* published on the
event bus — the paper's architecture carries "all management communication
between devices or services" over the bus, so a policy telling a sensor to
change its threshold is itself an event (type ``smc.cmd.set_threshold``)
which the sensor's proxy translates into device bytes.

Operations can also be bound to local Python handlers (for core services
such as logging or discovery control); a handler, when registered, runs
*instead of* publishing a command event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core.bus import EventBus, LocalPublisher
from repro.core.events import COMMAND_TYPE_PREFIX
from repro.errors import PolicyError
from repro.transport.wire import Value

LocalHandler = Callable[[str, Mapping[str, Value]], None]


@dataclass
class ActionStats:
    commands_published: int = 0
    local_invocations: int = 0


class ActionExecutor:
    """Turns resolved actions into command events or local calls."""

    def __init__(self, bus: EventBus, publisher: LocalPublisher | None = None) -> None:
        self.bus = bus
        self._publisher = (publisher if publisher is not None
                           else bus.local_publisher("policy-actions"))
        self._handlers: dict[str, LocalHandler] = {}
        self.stats = ActionStats()

    def register_handler(self, operation: str, handler: LocalHandler) -> None:
        """Bind ``operation`` to a local callable ``handler(target, params)``."""
        if operation in self._handlers:
            raise PolicyError(f"handler already registered for {operation!r}")
        self._handlers[operation] = handler

    def unregister_handler(self, operation: str) -> None:
        self._handlers.pop(operation, None)

    def execute(self, operation: str, target: str,
                params: dict[str, Value]) -> None:
        """Run one action: local handler if bound, else a command event."""
        handler = self._handlers.get(operation)
        if handler is not None:
            self.stats.local_invocations += 1
            handler(target, params)
            return
        attributes: dict[str, Value] = {"target": target}
        for name, value in params.items():
            if name == "target":
                raise PolicyError(
                    "action parameter name 'target' is reserved")
            attributes[name] = value
        self._publisher.publish(COMMAND_TYPE_PREFIX + operation, attributes)
        self.stats.commands_published += 1

    def command_type(self, operation: str) -> str:
        """The event type a given operation publishes as."""
        return COMMAND_TYPE_PREFIX + operation
