"""Policy-based management (paper Section II-A).

"Policies provide the means of specifying the adaptation strategy for
autonomic management.  Authorisation policies specify what resources the
components assigned to a role can access, and obligation policies
(event-condition-action rules) specify how components/services react to
events and interact with other components/services."

This package is a compact reproduction of the Ponder approach (the paper's
reference [4]) sized for an SMC:

* :mod:`repro.policy.model` — obligation (ECA) and authorisation policy
  objects, roles, action specifications;
* :mod:`repro.policy.language` — a Ponder-flavoured DSL parser so policies
  can be written as text and deployed to cells;
* :mod:`repro.policy.engine` — the evaluation engine: obligations subscribe
  to the event bus, conditions gate them, authorisation policies (negative
  overriding positive) gate every action, and actions become ``smc.cmd.*``
  events or local handler invocations;
* :mod:`repro.policy.deployment` — "when a device is discovered and
  granted membership of an SMC, the appropriate policies, based on device
  type, are deployed" — triggered by New Member events.

Policies can be added, removed, enabled and disabled at runtime "to change
the behaviour of cell components without reprogramming them".
"""

from repro.policy.actions import ActionExecutor
from repro.policy.engine import PolicyEngine
from repro.policy.language import parse_policies
from repro.policy.model import (
    ActionSpec,
    AttrRef,
    AuthorisationPolicy,
    ObligationPolicy,
    PolicySet,
    RoleTable,
)
from repro.policy.deployment import PolicyDeployer

__all__ = [
    "ObligationPolicy",
    "AuthorisationPolicy",
    "ActionSpec",
    "AttrRef",
    "PolicySet",
    "RoleTable",
    "PolicyEngine",
    "ActionExecutor",
    "PolicyDeployer",
    "parse_policies",
]
