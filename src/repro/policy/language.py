"""Ponder-lite policy language.

A compact textual form of the Ponder concepts the paper relies on, so
policies can be written, stored and deployed as text::

    role nurse : nurse.pda ;
    role monitor : sensor.hr, sensor.bp ;

    inst oblig HighHeartRate {
        on health.hr ;
        if hr > 120 and patient = "p-17" ;
        do notify(msg="HR high", hr=$hr) -> set_threshold(value=130) ;
        subject monitor ;
        target nurse ;
    }

    auth+ AllowNotify { subject monitor ; target nurse ; action notify ; }
    auth- NoActuation { subject monitor ; target pump ; action * ; }

Clauses:

* ``on`` — the triggering event type: exact (``health.hr``), a subtree
  (``health.*``), or any event (``*``);
* ``if`` — a conjunction of attribute comparisons over the triggering
  event (operators ``= != < <= > >= prefix suffix contains exists``);
* ``do`` — one or more actions separated by ``->`` (Ponder's sequencing
  operator); parameters are literals or ``$attr`` references resolved from
  the event;
* ``subject`` / ``target`` — role names used for authorisation checks;
* ``auth+`` / ``auth-`` — authorisation policies; ``action *`` covers all
  operations;
* ``role`` — assigns device types to a role.
"""

from __future__ import annotations

import re

from repro.errors import PolicyParseError
from repro.matching.filters import TYPE_ATTR, Constraint, Filter, Op
from repro.policy.model import (
    ActionSpec,
    AttrRef,
    AuthorisationPolicy,
    ObligationPolicy,
    PolicySet,
)

_TOKEN_RE = re.compile(r"""
    (?P<ws>[ \t\r]+)
  | (?P<comment>//[^\n]*|\#[^\n]*)
  | (?P<newline>\n)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<arrow>->)
  | (?P<op><=|>=|!=|[=<>])
  | (?P<name>[A-Za-z_][A-Za-z0-9_\-.]*)
  | (?P<symbol>[{}();:,*$+\-])
""", re.VERBOSE)

_KEYWORDS = frozenset({
    "inst", "oblig", "on", "if", "do", "subject", "target",
    "auth", "role", "action", "and", "true", "false",
    "prefix", "suffix", "contains", "exists",
})


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"<{self.kind} {self.text!r} @{self.line}:{self.column}>"


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    line, line_start = 1, 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise PolicyParseError(
                f"unexpected character {source[pos]!r}",
                line, pos - line_start + 1)
        kind = match.lastgroup
        text = match.group()
        if kind == "newline":
            line += 1
            line_start = match.end()
        elif kind not in ("ws", "comment"):
            tokens.append(_Token(kind, text, line, pos - line_start + 1))
        pos = match.end()
    tokens.append(_Token("eof", "", line, pos - line_start + 1))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- plumbing ------------------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _next(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text if text is not None else kind
            raise PolicyParseError(
                f"expected {wanted!r}, found {token.text!r}",
                token.line, token.column)
        return self._next()

    def _accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._next()
        return None

    def _error(self, message: str) -> PolicyParseError:
        token = self._peek()
        return PolicyParseError(message, token.line, token.column)

    # -- grammar -------------------------------------------------------------

    def parse(self) -> PolicySet:
        result = PolicySet()
        while self._peek().kind != "eof":
            token = self._peek()
            if token.kind == "name" and token.text == "inst":
                result.obligations.append(self._parse_obligation())
            elif token.kind == "name" and token.text in ("auth", "auth-"):
                # "auth-" lexes as one name because names may contain
                # hyphens; "auth+" lexes as name + symbol.
                result.authorisations.append(self._parse_authorisation())
            elif token.kind == "name" and token.text == "role":
                self._parse_role(result)
            else:
                raise self._error(
                    f"expected 'inst', 'auth' or 'role', found {token.text!r}")
        return result

    def _parse_obligation(self) -> ObligationPolicy:
        self._expect("name", "inst")
        self._expect("name", "oblig")
        name = self._parse_identifier("policy name")
        self._expect("symbol", "{")
        event_filter: Filter | None = None
        condition: Filter | None = None
        actions: tuple[ActionSpec, ...] = ()
        subject = "smc"
        target = "smc"
        while not self._accept("symbol", "}"):
            clause = self._expect("name").text
            if clause == "on":
                event_filter = self._parse_event_spec()
            elif clause == "if":
                condition = self._parse_condition()
            elif clause == "do":
                actions = self._parse_actions()
            elif clause == "subject":
                subject = self._parse_identifier("subject role")
            elif clause == "target":
                target = self._parse_identifier("target role")
            else:
                raise self._error(f"unknown clause {clause!r}")
            self._expect("symbol", ";")
        if event_filter is None:
            raise PolicyParseError(f"obligation {name!r} has no 'on' clause")
        if not actions:
            raise PolicyParseError(f"obligation {name!r} has no 'do' clause")
        return ObligationPolicy(name=name, event_filter=event_filter,
                                condition=condition, actions=actions,
                                subject=subject, target=target)

    def _parse_event_spec(self) -> Filter:
        if self._accept("symbol", "*"):
            return Filter([Constraint(TYPE_ATTR, Op.EXISTS)])
        token = self._expect("name")
        type_name = token.text
        if type_name.endswith("."):
            # "health.*": the name token greedily captured the dot.
            self._expect("symbol", "*")
            return Filter([Constraint(TYPE_ATTR, Op.PREFIX, type_name)])
        return Filter([Constraint(TYPE_ATTR, Op.EQ, type_name)])

    def _parse_condition(self) -> Filter:
        constraints = [self._parse_comparison()]
        while self._accept("name", "and"):
            constraints.append(self._parse_comparison())
        return Filter(constraints)

    def _parse_comparison(self) -> Constraint:
        attr = self._parse_identifier("attribute name")
        token = self._peek()
        if token.kind == "name" and token.text == "exists":
            self._next()
            return Constraint(attr, Op.EXISTS)
        if token.kind == "op":
            operator = self._next().text
        elif token.kind == "name" and token.text in ("prefix", "suffix",
                                                     "contains"):
            operator = self._next().text
        else:
            raise self._error(f"expected a comparison operator after {attr!r}")
        value = self._parse_literal()
        return Constraint(attr, operator, value)

    def _parse_actions(self) -> tuple[ActionSpec, ...]:
        actions = [self._parse_action()]
        while self._accept("arrow"):
            actions.append(self._parse_action())
        return tuple(actions)

    def _parse_action(self) -> ActionSpec:
        operation = self._parse_identifier("action operation")
        self._expect("symbol", "(")
        params: list[tuple[str, object]] = []
        target: str | None = None
        if not self._accept("symbol", ")"):
            while True:
                # Parameter names may shadow keywords ("target=..." is the
                # idiomatic way to redirect an action), so accept any name.
                pname = self._expect("name").text
                self._expect("op", "=")
                pvalue = self._parse_param_value()
                if pname == "target":
                    if not isinstance(pvalue, str):
                        raise self._error("action target must be a role name")
                    target = pvalue
                else:
                    params.append((pname, pvalue))
                if self._accept("symbol", ")"):
                    break
                self._expect("symbol", ",")
        return ActionSpec(operation=operation, params=tuple(params),
                          target=target)

    def _parse_param_value(self):
        if self._accept("symbol", "$"):
            return AttrRef(self._parse_identifier("attribute reference"))
        return self._parse_literal()

    def _parse_literal(self):
        token = self._peek()
        if token.kind == "number":
            self._next()
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            self._next()
            return _unescape(token.text[1:-1])
        if token.kind == "name" and token.text in ("true", "false"):
            self._next()
            return token.text == "true"
        if token.kind == "name":
            # Bare names are treated as strings (role/member identifiers).
            self._next()
            return token.text
        raise self._error(f"expected a literal value, found {token.text!r}")

    def _parse_identifier(self, what: str) -> str:
        token = self._peek()
        if token.kind != "name":
            raise self._error(f"expected {what}, found {token.text!r}")
        if token.text in _KEYWORDS:
            raise self._error(f"keyword {token.text!r} cannot be used as {what}")
        return self._next().text

    def _parse_authorisation(self) -> AuthorisationPolicy:
        keyword = self._expect("name")
        if keyword.text == "auth-":
            positive = False
        elif self._accept("symbol", "+"):
            positive = True
        elif self._accept("symbol", "-"):
            positive = False
        else:
            raise self._error("expected '+' or '-' after 'auth'")
        name = self._parse_identifier("authorisation name")
        self._expect("symbol", "{")
        subject = target = None
        operations: list[str] = []
        while not self._accept("symbol", "}"):
            clause = self._expect("name").text
            if clause == "subject":
                subject = self._parse_role_pattern()
            elif clause == "target":
                target = self._parse_role_pattern()
            elif clause == "action":
                operations = self._parse_operation_list()
            else:
                raise self._error(f"unknown auth clause {clause!r}")
            self._expect("symbol", ";")
        if subject is None or target is None or not operations:
            raise PolicyParseError(
                f"authorisation {name!r} needs subject, target and action")
        return AuthorisationPolicy(name=name, positive=positive,
                                   subject=subject, target=target,
                                   operations=tuple(operations))

    def _parse_role_pattern(self) -> str:
        if self._accept("symbol", "*"):
            return "*"
        return self._parse_identifier("role name")

    def _parse_operation_list(self) -> list[str]:
        operations = [self._parse_operation()]
        while self._accept("symbol", ","):
            operations.append(self._parse_operation())
        return operations

    def _parse_operation(self) -> str:
        if self._accept("symbol", "*"):
            return "*"
        return self._parse_identifier("operation name")

    def _parse_role(self, result: PolicySet) -> None:
        self._expect("name", "role")
        role = self._parse_identifier("role name")
        self._expect("symbol", ":")
        device_types = [self._expect("name").text]
        while self._accept("symbol", ","):
            device_types.append(self._expect("name").text)
        self._expect("symbol", ";")
        result.roles.assign(role, device_types)


def _unescape(text: str) -> str:
    return (text.replace('\\"', '"').replace("\\n", "\n")
            .replace("\\t", "\t").replace("\\\\", "\\"))


def parse_policies(source: str) -> PolicySet:
    """Parse Ponder-lite source text into a :class:`PolicySet`."""
    return _Parser(_tokenize(source)).parse()
