"""The simulated paper testbed.

Reproduces Section IV's measurement environment: "an iPAQ hx4700 PDA ...
communicating with a laptop (1.2GHz Pentium 3 with 256MB RAM) via an IP
connection over a USB cable".  The event bus (the Self-Managed Cell core)
runs on the PDA; the measurement publisher and subscriber are services on
the laptop, admitted through the ordinary discovery protocol, exactly as a
test program on the real testbed would have been.

``build_paper_testbed`` returns the whole assembly with both hosts exposed
so experiments can also read CPU accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.autonomic.manager import AutonomicConfig
from repro.core.client import BusClient
from repro.core.events import Event
from repro.discovery.agent import AgentConfig, DiscoveryAgent
from repro.errors import SimulationError
from repro.matching.filters import Filter
from repro.sim.hosts import LAPTOP_PROFILE, PDA_PROFILE, SimHost
from repro.sim.kernel import Simulator
from repro.sim.radio import USB_IP, LinkProfile, SimNetwork
from repro.sim.rng import RngRegistry
from repro.smc.cell import CellConfig, SelfManagedCell
from repro.transport.endpoint import PacketEndpoint
from repro.transport.reliability import DEFAULT_WINDOW
from repro.transport.simnet import SimTransport

#: Event type used by all benchmark traffic.
BENCH_EVENT_TYPE = "bench.payload"


class TimedList(list):
    """A list that records the (virtual) time of every append.

    The subscriber's delivery callback appends received events here, so
    ``times[i]`` is the exact simulated instant event ``i`` was delivered —
    the response-time experiments subtract the publish timestamp from it.
    """

    def __init__(self, clock) -> None:
        super().__init__()
        self._clock = clock
        self.times: list[float] = []

    def append(self, item) -> None:
        super().append(item)
        self.times.append(self._clock())

    def clear(self) -> None:
        super().clear()
        self.times.clear()


@dataclass
class PaperTestbed:
    """Handles to every piece of the simulated measurement setup."""

    sim: Simulator
    network: SimNetwork
    cell: SelfManagedCell
    publisher: BusClient
    subscriber: BusClient
    pda_host: SimHost
    laptop_host: SimHost
    received: "TimedList"

    def run_until_joined(self, timeout_s: float = 30.0) -> None:
        """Advance the simulation until both services are cell members."""
        deadline = self.sim.now() + timeout_s
        step = 0.25
        while len(self.cell.bus.members()) < 2:
            target = self.sim.now() + step
            if target > deadline:
                raise SimulationError(
                    "testbed services failed to join the cell "
                    f"within {timeout_s}s")
            self.sim.run(target)

    def drain(self, quiet_period_s: float = 5.0, max_s: float = 600.0) -> None:
        """Run until no benchmark event has arrived for ``quiet_period_s``."""
        deadline = self.sim.now() + max_s
        last_count = len(self.received)
        quiet_since = self.sim.now()
        while self.sim.now() < deadline:
            self.sim.run(self.sim.now() + 0.5)
            if len(self.received) != last_count:
                last_count = len(self.received)
                quiet_since = self.sim.now()
            elif self.sim.now() - quiet_since >= quiet_period_s:
                return


def build_paper_testbed(engine: str = "forwarding", seed: int = 0, *,
                        loss_rate: float = 0.0, window: int = DEFAULT_WINDOW,
                        extra_subscribers: int = 0,
                        enable_quench: bool = False,
                        subscribe_default: bool = True,
                        shards: int = 1,
                        link_profile: LinkProfile | None = None,
                        autonomic: AutonomicConfig | None = None
                        ) -> PaperTestbed:
    """Assemble the PDA+laptop testbed with the chosen matching engine.

    ``extra_subscribers`` attaches additional laptop-side subscriber
    services (the fan-out ablation); ``loss_rate`` overrides the link's
    loss for the loss ablation.  ``window`` sets every hop's reliable
    channel window — pipelined by default; pass ``window=1`` for the
    paper-faithful stop-and-wait transport its figures were measured on.
    ``shards`` partitions the PDA bus's subscription table across that
    many matching shards (1 = the paper's single bus; the figures are all
    measured at 1).  ``link_profile`` swaps the USB cable for another
    link model (e.g. a high-RTT personal-area uplink), keeping hosts and
    bus identical — the window-sweep benchmark uses it to expose
    round-trip serialisation.  ``autonomic`` attaches the MAPE-K control
    plane to the cell (RTT, flush and rebalance loops per its flags),
    ticking with the cell — the autonomic benchmarks drive the paper
    testbed with it enabled.
    """
    sim = Simulator()
    rng = RngRegistry(seed)
    network = SimNetwork(sim, rng)
    profile = link_profile if link_profile is not None else USB_IP
    if loss_rate != 0.0:
        profile = replace(profile, name=f"{profile.name}_loss{loss_rate}",
                          loss_rate=loss_rate)
    medium = network.add_medium("usb", profile)

    pda_host = SimHost(sim, PDA_PROFILE, "pda")
    laptop_host = SimHost(sim, LAPTOP_PROFILE, "laptop")
    network.attach("pda", pda_host, medium)
    # Publisher and subscriber are two sockets on the same laptop: separate
    # network endpoints sharing one CPU.
    network.attach("laptop-pub", laptop_host, medium)
    network.attach("laptop-sub", laptop_host, medium)

    cell = SelfManagedCell(
        SimTransport(network, "pda"), sim,
        CellConfig(cell_name="paper-testbed", patient="bench",
                   engine=engine, window=window, shards=shards,
                   enable_quench=enable_quench, autonomic=autonomic,
                   # RTO above the PDA's worst-case per-event processing
                   # time: a working link must not trigger spurious
                   # retransmissions that would distort the measurement.
                   rto_initial_s=1.5, rto_max_s=6.0,
                   # Long lease: membership churn must not perturb the
                   # measurement, as on the real testbed.
                   silent_after_s=60.0, purge_after_s=600.0,
                   sweep_period_s=5.0, heartbeat_period_s=10.0))

    publisher, _ = _attach_service(network, sim, laptop_host, "laptop-pub",
                                   "publisher", window)
    subscriber, _ = _attach_service(network, sim, laptop_host, "laptop-sub",
                                    "subscriber", window)

    received = TimedList(sim.now)
    testbed = PaperTestbed(sim=sim, network=network, cell=cell,
                           publisher=publisher, subscriber=subscriber,
                           pda_host=pda_host, laptop_host=laptop_host,
                           received=received)

    cell.start()
    testbed.run_until_joined()
    if subscribe_default:
        subscriber.subscribe(Filter.where(BENCH_EVENT_TYPE), received.append)

    for index in range(extra_subscribers):
        name = f"laptop-sub{index + 2}"
        network.attach(name, laptop_host, medium)
        extra, _ = _attach_service(network, sim, laptop_host, name,
                                   f"subscriber{index + 2}", window)
        _wait_for_member(testbed, 3 + index)
        extra.subscribe(Filter.where(BENCH_EVENT_TYPE), received.append)

    # Let subscriptions propagate before any measurement begins.
    sim.run(sim.now() + 2.0)
    return testbed


def _attach_service(network: SimNetwork, sim: Simulator, host: SimHost,
                    node: str, service_name: str,
                    window: int) -> tuple[BusClient, DiscoveryAgent]:
    endpoint = PacketEndpoint(SimTransport(network, node), sim, window=window,
                              rto_initial=1.5, rto_max=6.0)
    client = BusClient(endpoint, sim, bus_address=None, meter=host)
    agent = DiscoveryAgent(endpoint, sim, AgentConfig(
        name=service_name, device_type="service",
        target_cell="paper-testbed", beacon_timeout_s=120.0))

    def joined(_cell_name: str, core_address) -> None:
        client.bus_address = core_address

    agent.on_joined = joined
    agent.start()
    return client, agent


def _wait_for_member(testbed: PaperTestbed, count: int,
                     timeout_s: float = 30.0) -> None:
    deadline = testbed.sim.now() + timeout_s
    while len(testbed.cell.bus.members()) < count:
        target = testbed.sim.now() + 0.25
        if target > deadline:
            raise SimulationError(f"member {count} failed to join")
        testbed.sim.run(target)
