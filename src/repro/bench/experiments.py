"""The paper's experiments, plus the ablations DESIGN.md schedules.

Each function is deterministic for a given seed, runs entirely in virtual
time, and returns a structured result the reporting module can print as
the rows/series of the corresponding figure.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.bench.testbed import (
    BENCH_EVENT_TYPE,
    PaperTestbed,
    build_paper_testbed,
)
from repro.bench.workloads import (
    FIG4A_PAYLOAD_SIZES,
    FIG4B_PAYLOAD_SIZES,
    payload_attributes,
)
from repro.errors import SimulationError
from repro.matching.filters import Filter
from repro.sim.hosts import PDA_PROFILE, LAPTOP_PROFILE, SimHost
from repro.sim.kernel import Simulator
from repro.sim.mobility import WalkAway
from repro.sim.radio import USB_IP, WIFI_11B, SimNetwork
from repro.sim.rng import RngRegistry

#: Engine names in paper order: first generation, then its replacement.
PAPER_ENGINES = ("siena", "forwarding")

#: Human labels matching the figure legends.
ENGINE_LABELS = {"siena": "Siena-based event bus",
                 "forwarding": "C-based event bus"}


@dataclass
class SeriesPoint:
    """One x position of one series."""

    x: float
    mean: float
    minimum: float
    maximum: float
    n: int


@dataclass
class Series:
    label: str
    points: list[SeriesPoint] = field(default_factory=list)


@dataclass
class ExperimentResult:
    name: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: dict = field(default_factory=dict)

    def series_by_label(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(label)


def _run_until(sim: Simulator, condition, max_time: float) -> None:
    while not condition():
        if sim.now() > max_time:
            raise SimulationError(f"condition not met by t={max_time}")
        if not sim.step():
            raise SimulationError("simulation went idle before condition")


# -- E1: Figure 4(a) — response time vs payload size -------------------------

def run_fig4a(payload_sizes: tuple[int, ...] = FIG4A_PAYLOAD_SIZES,
              samples: int = 20, engines: tuple[str, ...] = PAPER_ENGINES,
              seed: int = 0) -> ExperimentResult:
    """End-to-end response time of the event bus against message size.

    One event at a time (the unloaded-latency methodology): publish on the
    laptop, through the bus on the PDA, delivered back to the laptop;
    response = delivery instant − publish instant.
    """
    result = ExperimentResult(
        name="fig4a", x_label="Payload Size (bytes)",
        y_label="Response Time (ms)")
    for engine in engines:
        # window=1: the paper's figures were measured over the
        # stop-and-wait transport (one event outstanding, so the window
        # could not matter anyway — pinning keeps the reproduction exact).
        testbed = build_paper_testbed(engine=engine, seed=seed, window=1)
        series = Series(label=ENGINE_LABELS.get(engine, engine))
        for size in payload_sizes:
            values = []
            for sample in range(samples):
                expected = len(testbed.received) + 1
                event = testbed.publisher.publish(
                    BENCH_EVENT_TYPE, payload_attributes(size, sample))
                _run_until(testbed.sim,
                           lambda: len(testbed.received) >= expected,
                           testbed.sim.now() + 60.0)
                response = testbed.received.times[expected - 1] - event.timestamp
                values.append(response * 1000.0)
                # Idle gap so acks drain and samples are independent.
                testbed.sim.run(testbed.sim.now() + 0.2)
            series.points.append(SeriesPoint(
                x=size, mean=statistics.fmean(values), minimum=min(values),
                maximum=max(values), n=len(values)))
        result.series.append(series)
        result.notes[f"{engine}.bytes_translated"] = getattr(
            testbed.cell.engine, "bytes_translated", 0)
    return result


# -- E2/E5: Figure 4(b) — throughput vs payload size ------------------------

def run_fig4b(payload_sizes: tuple[int, ...] = FIG4B_PAYLOAD_SIZES,
              duration_s: float = 30.0, pipeline_depth: int = 4,
              engines: tuple[str, ...] = PAPER_ENGINES,
              seed: int = 0, batch_size: int = 1,
              window: int = 1,
              link_profile=None) -> ExperimentResult:
    """Sustained payload throughput of the event bus against message size.

    The publisher keeps ``pipeline_depth`` events outstanding for
    ``duration_s`` of virtual time; throughput counts payload bytes
    delivered per second of the delivery span.

    ``batch_size > 1`` engages the batch publish pipeline: the publisher
    coalesces that many PUBLISH frames per reliable payload, the bus
    matches and dispatches them in one :meth:`EventBus.publish_batch`
    round, and the subscriber's proxy flushes one BATCH packet per
    scheduling round — the per-packet overheads the per-event path pays
    per event are amortised across the whole batch.

    ``window`` sets every hop's reliable-channel window.  The default of 1
    reproduces the paper's stop-and-wait transport (the published Figure
    4(b) curves); larger values engage the sliding-window/SACK channel so
    outstanding payloads stream without a round trip per frame — the
    window-sweep benchmark measures the difference.

    ``link_profile`` swaps the testbed's USB cable for another link model
    (see :func:`~repro.bench.testbed.build_paper_testbed`); on the USB
    link the PDA's per-event software cost dominates and the window
    barely registers — exactly the paper's point about copy costs — so
    the window sweep runs over a high-RTT uplink instead.
    """
    result = ExperimentResult(
        name="fig4b", x_label="Payload Size (bytes)",
        y_label="Throughput (Kilobytes per second)")
    result.notes["batch_size"] = batch_size
    result.notes["window"] = window
    for engine in engines:
        series = Series(label=ENGINE_LABELS.get(engine, engine))
        events_per_second: dict[int, float] = {}
        for size in payload_sizes:
            testbed = build_paper_testbed(engine=engine, seed=seed,
                                          window=window,
                                          link_profile=link_profile)
            delivered, span = _pump_throughput(testbed, size, duration_s,
                                               pipeline_depth, batch_size)
            if span <= 0.0 or delivered < 2:
                kbps = 0.0
                eps = 0.0
            else:
                kbps = (size * (delivered - 1)) / span / 1024.0
                eps = (delivered - 1) / span
            series.points.append(SeriesPoint(
                x=size, mean=kbps, minimum=kbps, maximum=kbps, n=delivered))
            events_per_second[size] = eps
        result.series.append(series)
        result.notes[f"{engine}.events_per_second"] = events_per_second
    return result


def _pump_throughput(testbed: PaperTestbed, size: int, duration_s: float,
                     pipeline_depth: int,
                     batch_size: int = 1) -> tuple[int, float]:
    sim = testbed.sim
    published = 0
    start_count = len(testbed.received)

    def pump() -> None:
        nonlocal published
        while True:
            outstanding = published - (len(testbed.received) - start_count)
            want = pipeline_depth - outstanding
            if want <= 0:
                return
            if batch_size <= 1:
                testbed.publisher.publish(
                    BENCH_EVENT_TYPE, payload_attributes(size, published))
                published += 1
            else:
                count = min(want, batch_size)
                testbed.publisher.publish_batch(
                    [(BENCH_EVENT_TYPE, payload_attributes(size,
                                                           published + i))
                     for i in range(count)])
                published += count

    pump()
    t_end = sim.now() + duration_s
    while sim.now() < t_end:
        if not sim.step():
            break
        pump()
    delivered_times = testbed.received.times[start_count:]
    delivered_times = [t for t in delivered_times if t <= t_end]
    if len(delivered_times) < 2:
        return len(delivered_times), 0.0
    return len(delivered_times), delivered_times[-1] - delivered_times[0]


# -- E3/E4: the in-text link numbers ----------------------------------------

def run_link_baseline(seed: int = 0, ping_count: int = 2000,
                      bulk_packets: int = 2000,
                      packet_size: int = 1472) -> dict:
    """Measure the raw link, no event bus involved.

    Reproduces the paper's quoted numbers: one-way latency 1.5 ms average
    (0.6 minimum, 2.3 maximum over a minute of traffic) and a raw transfer
    throughput of ~575 KB/s.
    """
    sim = Simulator()
    network = SimNetwork(sim, RngRegistry(seed))
    medium = network.add_medium("usb", USB_IP)
    pda = SimHost(sim, PDA_PROFILE, "pda")
    laptop = SimHost(sim, LAPTOP_PROFILE, "laptop")
    network.attach("pda", pda, medium)
    network.attach("laptop", laptop, medium)

    # Latency: probe the propagation delay of small datagrams.
    network.latency_probe = []
    received = []
    network.set_receiver("pda", lambda src, data: received.append(sim.now()))
    network.set_receiver("laptop", lambda src, data: None)
    for index in range(ping_count):
        sim.call_later(index * 0.03, network.send, "laptop", "pda", b"x" * 32)
    sim.run_until_idle()
    latencies = [value * 1000.0 for value in network.latency_probe]
    network.latency_probe = None

    # Bulk throughput: blast MTU-sized datagrams; the transfer rate is the
    # delivery rate at the PDA.
    first_send = sim.now()
    bytes_got = []
    network.set_receiver("pda",
                         lambda src, data: bytes_got.append((sim.now(),
                                                             len(data))))
    for _ in range(bulk_packets):
        network.send("laptop", "pda", b"y" * packet_size)
    sim.run_until_idle()
    total = sum(n for _, n in bytes_got)
    span = bytes_got[-1][0] - first_send if bytes_got else 0.0
    throughput_kbs = (total / span / 1024.0) if span > 0 else 0.0

    return {
        "latency_ms_mean": statistics.fmean(latencies),
        "latency_ms_min": min(latencies),
        "latency_ms_max": max(latencies),
        "latency_samples": len(latencies),
        "bulk_throughput_kb_s": throughput_kbs,
        "bulk_packets": len(bytes_got),
    }


def run_window_goodput(windows: tuple[int, ...] = (1, 32),
                       messages: int = 400, payload_size: int = 256,
                       rtt_s: float = 0.020, loss_rate: float = 0.02,
                       seed: int = 0) -> dict:
    """Reliable-channel goodput vs send window on a lossy long-RTT link.

    Isolates the transport from the bus: one :class:`ReliableChannel`
    pair over an in-memory link with ``rtt_s`` round-trip time and
    seeded datagram loss, pushing ``messages`` payloads through each
    window setting.  Stop-and-wait pays one RTT per payload; the
    sliding-window/SACK sender streams a window per RTT and retransmits
    only the lost packets, so goodput scales with the window until the
    link saturates — the ratio is CI's regression gate for the windowed
    transport.
    """
    import random

    from repro.transport.inmem import InMemoryHub
    from repro.transport.packets import Packet
    from repro.transport.reliability import ReliableChannel

    results: dict = {"rtt_ms": rtt_s * 1000.0, "loss_rate": loss_rate,
                     "messages": messages, "payload_size": payload_size}
    payloads = [f"m{i:06d}".encode().ljust(payload_size, b".")
                for i in range(messages)]
    for window in windows:
        sim = Simulator()
        hub = InMemoryHub(sim, delay_s=rtt_s / 2.0)
        rng = random.Random(seed)
        hub.drop_filter = lambda src, dest, data: rng.random() >= loss_rate
        sender_t, receiver_t = hub.create("tx"), hub.create("rx")
        got: list[bytes] = []
        done_at = [0.0]

        def on_deliver(_sender, payload, got=got, done_at=done_at, sim=sim):
            got.append(payload)
            done_at[0] = sim.now()

        # RTO just above the RTT so a working link never times out early.
        sender = ReliableChannel(sender_t, sim, "rx", lambda s, p: None,
                                 window=window, rto_initial=3.0 * rtt_s,
                                 rto_max=2.0)
        receiver = ReliableChannel(receiver_t, sim, "tx", on_deliver,
                                   window=window)
        sender_t.set_receiver(
            lambda src, data: sender.handle_packet(Packet.decode(data)))
        receiver_t.set_receiver(
            lambda src, data: receiver.handle_packet(Packet.decode(data)))

        start = sim.now()
        for payload in payloads:
            sender.send(payload)
        deadline = start + 600.0
        while len(got) < messages and sim.now() < deadline:
            sim.run(sim.now() + 0.25)
        if got != payloads:
            raise SimulationError(
                f"window={window}: delivered {len(got)}/{messages} "
                "or stream corrupted")
        elapsed = done_at[0] - start
        results[window] = {
            "goodput_kb_s": messages * payload_size / elapsed / 1024.0,
            "elapsed_s": elapsed,
            "retransmissions": sender.stats.retransmissions,
            "fast_retransmits": sender.stats.fast_retransmits,
            "acks_sent": receiver.stats.acks_sent,
        }
    if len(windows) >= 2:
        slowest, fastest = windows[0], windows[-1]
        results["speedup"] = (results[fastest]["goodput_kb_s"]
                              / results[slowest]["goodput_kb_s"])
    return results


# -- A7: the autonomic control plane ------------------------------------------

def run_rtt_convergence(rtt_s: float, *, warm_messages: int = 240,
                        check_messages: int = 60,
                        payload_size: int = 64, tick_s: float = 0.05) -> dict:
    """RTO self-tuning on one link, from the channel's default config.

    One :class:`~repro.transport.reliability.ReliableChannel` pair over a
    fixed-delay in-memory link of ``rtt_s`` round-trip time, with the
    autonomic RTT controller ticking.  The channel starts at its stock
    RTO (50 ms) — an order of magnitude too high for the paper's USB
    cable and far too *low* for a wide-area uplink, where every packet
    would retransmit before its ack returned and Karn's rule would starve
    the estimator (the controller's blind backoff breaks that deadlock).
    After a warm phase, a check phase counts spurious retransmissions at
    the converged RTO.  Fully deterministic (virtual time, no loss).

    The *optimal static RTO* for a fixed-delay link is the link RTT
    itself — the smallest value that never fires a spurious timeout — so
    ``rto_over_optimal`` is the benchmark's figure of merit.
    """
    from repro.autonomic import AutonomicConfig, AutonomicManager, RttController
    from repro.transport.inmem import InMemoryHub
    from repro.transport.packets import Packet
    from repro.transport.reliability import ReliableChannel

    sim = Simulator()
    hub = InMemoryHub(sim, delay_s=rtt_s / 2.0)
    sender_t, receiver_t = hub.create("tx"), hub.create("rx")
    got: list[bytes] = []
    # Stock channel configuration — the whole point is that *one* default
    # works on both links once the loop is closed.
    sender = ReliableChannel(sender_t, sim, "rx", lambda s, p: None)
    receiver = ReliableChannel(receiver_t, sim, "tx",
                               lambda s, p: got.append(p))
    sender_t.set_receiver(
        lambda src, data: sender.handle_packet(Packet.decode(data)))
    receiver_t.set_receiver(
        lambda src, data: receiver.handle_packet(Packet.decode(data)))

    manager = AutonomicManager(
        sim, controllers=[RttController(lambda: [sender])],
        config=AutonomicConfig(tick_s=tick_s))
    manager.start()
    default_rto = sender.rto_initial

    def pump(count: int, spacing: float) -> None:
        start = sim.now()
        for index in range(count):
            sim.call_at(start + index * spacing, sender.send,
                        b"m" * payload_size)
        deadline = sim.now() + count * spacing + 200.0 * max(rtt_s, 0.05)
        while len(got) < pump.total and sim.now() < deadline:
            sim.run(sim.now() + max(rtt_s, 0.01))
        if len(got) < pump.total:
            raise SimulationError(
                f"rtt={rtt_s}: only {len(got)}/{pump.total} delivered")

    pump.total = warm_messages
    pump(warm_messages, rtt_s / 2.0)
    converged_rto = sender.rto_initial
    rtx_before = sender.stats.retransmissions
    pump.total = warm_messages + check_messages
    pump(check_messages, rtt_s / 2.0)
    manager.stop()

    return {
        "rtt_s": rtt_s,
        "optimal_rto_s": rtt_s,
        "default_rto_s": default_rto,
        "converged_rto_s": converged_rto,
        "rto_over_optimal": converged_rto / rtt_s,
        "srtt_s": sender.stats.srtt,
        "rttvar_s": sender.stats.rttvar,
        "rtt_samples": sender.stats.rtt_samples,
        "warmup_retransmissions": rtx_before,
        "spurious_rtx_after_convergence":
            sender.stats.retransmissions - rtx_before,
        "rtt_actuations": len(manager.actuations("rtt")),
    }


def run_rebalance_recovery(sub_count: int = 4000, batches: int = 10,
                           batch_size: int = 150, shards: int = 8,
                           seed: int = 7, runs: int = 2) -> dict:
    """Throughput recovery on a skewed vitals ward, static vs autonomic.

    The adversarial workload for static CRC routing: every alert rule in
    the ward constrains the same attribute class ``{type, hr, patient}``,
    so the whole table hashes onto one shard of ``shards`` — and one
    re-subscription per batch (the churn real cells live with) wholesale-
    invalidates that shard's satisfied-value memo every round, exactly as
    if the bus were unsharded.  With the autonomic manager ticking, the
    rebalancer detects the pin and splits the class by the ``patient``
    equality bucket, spreading fragments *and their events* across all
    shards, so each churn invalidation cold-starts ~1/``shards`` of the
    table.  Wall-clock, best-of-``runs`` per configuration; both runs
    must produce identical BusStats (the differential suite pins the
    stronger per-event property).
    """
    import random
    import time as wallclock

    from repro.autonomic import AutonomicConfig, AutonomicManager, ShardRebalancer
    from repro.core.events import Event
    from repro.core.sharding import ShardedEventBus
    from repro.ids import service_id_from_name
    from repro.matching.filters import Constraint, Filter, Op, Subscription

    def build_subs(count, rng, first_id=1):
        subs = []
        for index in range(count):
            constraints = [
                Constraint("type", Op.EQ, f"vitals.{rng.choice('abcd')}"),
                Constraint("hr", rng.choice([Op.GT, Op.LT]),
                           rng.randint(40, 180)),
                Constraint("patient", Op.EQ, f"p-{rng.randint(1, 64)}"),
            ]
            subs.append(Subscription(first_id + index,
                                     service_id_from_name("ward"),
                                     [Filter(constraints)]))
        return subs

    def run_once(autonomic: bool):
        rng = random.Random(seed)
        sim = Simulator()
        bus = ShardedEventBus(sim, shards)
        for subscription in build_subs(sub_count, rng):
            bus.subscribe_local(subscription.filters, lambda event: None)
        churn = build_subs(batches, rng, first_id=sub_count + 1)
        sender = service_id_from_name("vitals-pack")
        stamped = []
        for seqno in range((batches + 1) * batch_size):
            attrs = {"hr": rng.randint(40, 180),
                     "patient": f"p-{rng.randint(1, 64)}"}
            stamped.append(Event(f"vitals.{rng.choice('abcd')}", attrs,
                                 sender, seqno + 1, 0.0))

        manager = None
        if autonomic:
            manager = AutonomicManager(
                sim, None,
                [ShardRebalancer(bus.sharded, hot_ratio=2.0,
                                 min_fragments=64)],
                config=AutonomicConfig())
        bus.publish_batch(stamped[:batch_size])        # warm
        sim.run_until_idle()
        if manager is not None:
            manager.tick()                             # detect + split here
            sim.run_until_idle()

        # repro-lint: ignore[RL001] wall-clock measurement is this bench's point
        start = wallclock.perf_counter()
        for index in range(1, batches + 1):
            bus.publish_batch(stamped[index * batch_size:
                                      (index + 1) * batch_size])
            sim.run_until_idle()
            sub_id = bus.subscribe_local(churn[index - 1].filters,
                                         lambda event: None)
            bus.unsubscribe_local(sub_id)
            if manager is not None:
                manager.tick()
        # repro-lint: ignore[RL001] wall-clock measurement is this bench's point
        elapsed = wallclock.perf_counter() - start
        stats = bus.stats
        outcome = (stats.published, stats.matched, stats.unmatched,
                   stats.delivered_local)
        audit = list(manager.audit) if manager is not None else []
        return elapsed, outcome, audit, bus.sharded.shard_loads()

    results: dict = {"sub_count": sub_count, "batches": batches,
                     "batch_size": batch_size, "shards": shards}
    events = batches * batch_size
    for label, autonomic in (("static", False), ("autonomic", True)):
        best, outcome, audit, loads = min(
            (run_once(autonomic) for _ in range(runs)), key=lambda r: r[0])
        results[label] = {
            "events_per_s": events / best, "elapsed_s": best,
            "outcome": outcome, "shard_loads": loads,
            "actuations": [f"{a.action}:{a.detail.get('bucket_name')}"
                           for a in audit],
        }
    assert results["static"]["outcome"] == results["autonomic"]["outcome"]
    results["speedup"] = (results["autonomic"]["events_per_s"]
                          / results["static"]["events_per_s"])
    return results


# -- A5: fan-out ---------------------------------------------------------------

def run_fanout(subscriber_counts: tuple[int, ...] = (1, 2, 4, 8),
               payload_size: int = 1000, samples: int = 10,
               engine: str = "forwarding", seed: int = 0) -> ExperimentResult:
    """Response time until the *last* subscriber has the event, vs fan-out.

    The paper names "variation in delays incurred depending on ... number
    of recipients" as a planned investigation (Section VI).
    """
    result = ExperimentResult(
        name="fanout", x_label="Subscribers",
        y_label="Response Time to last subscriber (ms)")
    series = Series(label=ENGINE_LABELS.get(engine, engine))
    for count in subscriber_counts:
        testbed = build_paper_testbed(engine=engine, seed=seed,
                                      extra_subscribers=count - 1)
        values = []
        for sample in range(samples):
            expected = len(testbed.received) + count
            event = testbed.publisher.publish(
                BENCH_EVENT_TYPE, payload_attributes(payload_size, sample))
            _run_until(testbed.sim,
                       lambda: len(testbed.received) >= expected,
                       testbed.sim.now() + 60.0)
            response = testbed.received.times[expected - 1] - event.timestamp
            values.append(response * 1000.0)
            testbed.sim.run(testbed.sim.now() + 0.2)
        series.points.append(SeriesPoint(
            x=count, mean=statistics.fmean(values), minimum=min(values),
            maximum=max(values), n=len(values)))
    result.series.append(series)
    return result


# -- A4: loss sweep ----------------------------------------------------------

def run_loss_sweep(loss_rates: tuple[float, ...] = (0.0, 0.01, 0.05, 0.10,
                                                    0.20),
                   payload_size: int = 500, events: int = 100,
                   engine: str = "forwarding", seed: int = 0) -> ExperimentResult:
    """Delivery semantics under datagram loss.

    Every event must still arrive exactly once and in order (the reliable
    channel retries); the cost shows up as retransmissions and latency.
    """
    result = ExperimentResult(
        name="loss", x_label="Datagram loss rate",
        y_label="Mean response time (ms)")
    series = Series(label=ENGINE_LABELS.get(engine, engine))
    retransmissions: dict[float, int] = {}
    complete: dict[float, bool] = {}
    for loss in loss_rates:
        testbed = build_paper_testbed(engine=engine, seed=seed,
                                      loss_rate=loss)
        values = []
        for sample in range(events):
            expected = len(testbed.received) + 1
            event = testbed.publisher.publish(
                BENCH_EVENT_TYPE, payload_attributes(payload_size, sample))
            _run_until(testbed.sim,
                       lambda: len(testbed.received) >= expected,
                       testbed.sim.now() + 600.0)
            values.append(
                (testbed.received.times[expected - 1] - event.timestamp)
                * 1000.0)
        series.points.append(SeriesPoint(
            x=loss, mean=statistics.fmean(values), minimum=min(values),
            maximum=max(values), n=len(values)))
        # In-order, exactly-once, complete: the semantics held under loss.
        seqs = [e.get("seq") for e in testbed.received]
        complete[loss] = (seqs == sorted(seqs) and len(seqs) == events
                          and len(set(seqs)) == events)
        retransmissions[loss] = testbed.network.datagrams_dropped
    result.series.append(series)
    result.notes["datagrams_dropped"] = retransmissions
    result.notes["delivery_complete_in_order"] = complete
    return result


# -- A3: quenching --------------------------------------------------------------

def run_quench_experiment(publishes: int = 200, payload_size: int = 200,
                          seed: int = 0) -> dict:
    """Radio traffic with and without quenching, publisher unobserved.

    The publisher advertises what it emits; with no matching subscriber the
    bus quenches it, so publishing attempts cost nothing on air — the
    power-saving benefit Section VI anticipates from Elvin's quenching.
    """
    results = {}
    for quench_enabled in (False, True):
        # No default bench subscription: the publisher must be unobserved
        # for quenching to have anything to suppress.
        testbed = build_paper_testbed(engine="forwarding", seed=seed,
                                      enable_quench=quench_enabled,
                                      subscribe_default=False)
        testbed.subscriber.subscribe(Filter.where("other.topic"),
                                     lambda e: None)
        if quench_enabled:
            testbed.publisher.advertise(Filter.where(BENCH_EVENT_TYPE))
        testbed.sim.run(testbed.sim.now() + 2.0)

        baseline = testbed.network.datagrams_sent
        for index in range(publishes):
            testbed.publisher.publish(
                BENCH_EVENT_TYPE, payload_attributes(payload_size, index))
            testbed.sim.run(testbed.sim.now() + 0.05)
        testbed.drain(quiet_period_s=2.0, max_s=120.0)
        key = "quench_on" if quench_enabled else "quench_off"
        results[key] = {
            "datagrams_on_air": testbed.network.datagrams_sent - baseline,
            "publishes_suppressed":
                testbed.publisher.stats.publishes_quenched,
            "publishes_sent": testbed.publisher.stats.published,
        }
    results["datagram_reduction_factor"] = (
        results["quench_off"]["datagrams_on_air"]
        / max(1, results["quench_on"]["datagrams_on_air"]))
    return results


# -- A6: discovery timing --------------------------------------------------------

def run_discovery_timing(beacon_periods: tuple[float, ...] = (0.25, 0.5,
                                                              1.0, 2.0),
                         purge_after_s: float = 6.0,
                         seed: int = 0) -> ExperimentResult:
    """Time-to-admission vs beacon period, and purge latency.

    Section VI: scenarios "such as maximum timeouts for the discovery
    service to allow silence from a device until a Purge Member event is
    launched".
    """
    from repro.core.events import NEW_MEMBER_TYPE, PURGE_MEMBER_TYPE
    from repro.devices.actuators import ManualSensor
    from repro.smc.cell import CellConfig, SelfManagedCell
    from repro.transport.endpoint import PacketEndpoint
    from repro.transport.simnet import SimTransport

    result = ExperimentResult(
        name="discovery", x_label="Beacon period (s)",
        y_label="Time to admission (s)")
    series = Series(label="time-to-admit")
    purge_latencies: dict[float, float] = {}
    for period in beacon_periods:
        sim = Simulator()
        network = SimNetwork(sim, RngRegistry(seed))
        medium = network.add_medium("wifi", WIFI_11B)
        network.attach("pda", SimHost(sim, PDA_PROFILE, "pda"), medium)
        walk = WalkAway(t_leave=20.0, t_return=60.0, distance=500.0)
        network.attach("dev", SimHost(sim, LAPTOP_PROFILE, "dev"), medium,
                       walk)
        cell = SelfManagedCell(
            SimTransport(network, "pda"), sim,
            CellConfig(cell_name="timing", beacon_period_s=period,
                       silent_after_s=2.0, purge_after_s=purge_after_s,
                       sweep_period_s=0.1))
        moments: dict[str, float] = {}
        cell.subscribe(Filter.where(NEW_MEMBER_TYPE),
                       lambda e: moments.setdefault("admitted", sim.now()))
        cell.subscribe(Filter.where(PURGE_MEMBER_TYPE),
                       lambda e: moments.setdefault("purged", sim.now()))
        device = ManualSensor(
            PacketEndpoint(SimTransport(network, "dev"), sim), sim,
            "dev-1", "service", target_cell="timing")
        cell.start()
        start = sim.now()
        device.start()
        sim.run(40.0)
        admit_time = moments.get("admitted", float("nan")) - start
        series.points.append(SeriesPoint(x=period, mean=admit_time,
                                         minimum=admit_time,
                                         maximum=admit_time, n=1))
        # Purge latency: device walks out of range at t=20; purge should
        # land ~silence-detection + purge_after later.
        purge_latencies[period] = moments.get("purged", float("nan")) - 20.0
    result.series.append(series)
    result.notes["purge_latency_after_leave_s"] = purge_latencies
    result.notes["configured_purge_after_s"] = purge_after_s
    return result


def run_lifecycle_timing(heartbeat_periods: tuple[float, ...] = (0.2, 0.5,
                                                                 1.0),
                         drain_backlog: int = 50,
                         seed: int = 0) -> ExperimentResult:
    """Ghost-detection latency vs heartbeat period, and drain completeness.

    Two lifecycle guarantees, measured:

    * a member that dies silently is marked DEGRADED within
      3 x heartbeat period (the jitter-tolerant threshold) plus at most
      one sweep period;
    * a member that announces departure (LEAVE_INTENT) has its queued
      deliveries flushed completely before teardown — zero matched-event
      loss on a planned exit.
    """
    from repro.core.bootstrap import ProxyBootstrap
    from repro.core.bus import EventBus
    from repro.core.client import BusClient
    from repro.core.events import PURGE_MEMBER_TYPE
    from repro.discovery.agent import AgentConfig, DiscoveryAgent
    from repro.discovery.service import DiscoveryConfig, DiscoveryService
    from repro.sim.faults import HubFaults
    from repro.transport.endpoint import PacketEndpoint
    from repro.transport.inmem import InMemoryHub

    result = ExperimentResult(
        name="lifecycle", x_label="Heartbeat period (s)",
        y_label="Ghost-detection latency (s)")

    def build(sim, hub, heartbeat_s, **config):
        defaults = dict(cell_name="lifecycle", beacon_period_s=heartbeat_s,
                        heartbeat_period_s=heartbeat_s,
                        silent_after_s=3.0 * heartbeat_s,
                        purge_after_s=10.0 * heartbeat_s,
                        sweep_period_s=heartbeat_s / 10.0)
        defaults.update(config)
        core = PacketEndpoint(hub.create("core"), sim)
        bus = EventBus(sim)
        ProxyBootstrap(bus, core)
        service = DiscoveryService(bus, core, sim,
                                   DiscoveryConfig(**defaults))
        return bus, service

    def agent(sim, hub, name, **config):
        defaults = dict(name=name, device_type="service",
                        beacon_timeout_s=1000.0)
        defaults.update(config)
        return DiscoveryAgent(PacketEndpoint(hub.create(name), sim), sim,
                              AgentConfig(**defaults))

    # -- A: detection latency across heartbeat periods -----------------------
    series = Series(label="degraded-detection")
    for heartbeat_s in heartbeat_periods:
        sim = Simulator()
        hub = InMemoryHub(sim)
        _bus, service = build(sim, hub, heartbeat_s)
        ghost = agent(sim, hub, "ghost")
        service.start()
        ghost.start()
        sim.run(4.0 * heartbeat_s + 0.05)       # joined, mid-interval
        HubFaults(hub, rng_seed=seed).kill("ghost")
        sim.run(20.0 * heartbeat_s)
        latency = (service.degraded_latencies[0]
                   if service.degraded_latencies else float("nan"))
        series.points.append(SeriesPoint(x=heartbeat_s, mean=latency,
                                         minimum=latency, maximum=latency,
                                         n=1))
    result.series.append(series)

    # -- B: graceful drain flushes the whole backlog -------------------------
    sim = Simulator()
    hub = InMemoryHub(sim)
    bus, service = build(sim, hub, 0.2, drain_deadline_s=60.0)
    publisher = agent(sim, hub, "pub")
    subscriber = agent(sim, hub, "sub")
    pub_client = BusClient(publisher.endpoint, sim, None)
    sub_client = BusClient(subscriber.endpoint, sim, None)
    publisher.on_joined = lambda _c, addr: setattr(
        pub_client, "bus_address", addr)
    subscriber.on_joined = lambda _c, addr: setattr(
        sub_client, "bus_address", addr)
    drained_at: dict[str, float] = {}
    bus.subscribe_local(Filter.where(PURGE_MEMBER_TYPE),
                        lambda e: drained_at.setdefault("purged", sim.now()))
    service.start()
    publisher.start()
    subscriber.start()
    sim.run(1.0)
    delivered: list[int] = []
    sub_client.subscribe(Filter.where("bench.drain"),
                         lambda e: delivered.append(e.get("n")))
    sim.run(2.0)
    proxy = bus.proxy_of(subscriber.endpoint.service_id)
    faults = HubFaults(hub, rng_seed=seed)
    faults.block_one_way("core", "sub")          # deliveries queue up
    for n in range(drain_backlog):
        pub_client.publish("bench.drain", {"n": n})
    sim.run(3.0)
    subscriber.leave_gracefully()
    sim.run(4.0)
    faults.unblock_one_way("core", "sub")        # flush and tear down
    drain_kicked = sim.now()
    sim.run(30.0)
    result.notes["drain"] = {
        "events_published": drain_backlog,
        "events_delivered": len(delivered),
        "delivered_in_order": delivered == list(range(drain_backlog)),
        "dropped_on_destroy": proxy.stats.dropped_on_destroy,
        "drain_completed": service.stats.drains_completed == 1,
        "flush_latency_s": drained_at.get("purged", float("nan"))
        - drain_kicked,
    }
    return result
