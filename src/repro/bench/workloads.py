"""Workload generation for the benchmark harness."""

from __future__ import annotations

from repro.sim.rng import RngRegistry
from repro.transport.wire import Value

#: Figure 4(a) sweeps payloads from 0 to 5000 bytes.
FIG4A_PAYLOAD_SIZES = (0, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000,
                       4500, 5000)
#: Figure 4(b) sweeps payloads from 0 to 3000 bytes.
FIG4B_PAYLOAD_SIZES = (0, 250, 500, 750, 1000, 1250, 1500, 1750, 2000,
                       2250, 2500, 2750, 3000)


def payload_attributes(size: int, sequence: int,
                       rng: RngRegistry | None = None) -> dict[str, Value]:
    """Attributes for one benchmark event with ``size`` bytes of payload.

    The payload is incompressible-ish pseudo-random data so no layer can
    cheat; the sequence number lets experiments pair sends with receives.
    """
    if size < 0:
        raise ValueError(f"payload size must be >= 0, got {size}")
    if size == 0:
        data = b""
    elif rng is None:
        # Deterministic repeating pattern keyed on the sequence number.
        unit = bytes((33 + (sequence + i) % 90) for i in range(min(size, 251)))
        repeats = size // len(unit) + 1
        data = (unit * repeats)[:size]
    else:
        data = rng.stream("payload").randbytes(size)
    return {"data": data, "seq": sequence}


def ban_monitoring_mix(rng: RngRegistry,
                       count: int) -> list[tuple[str, dict[str, Value]]]:
    """A realistic body-area-network event mix for ablation workloads.

    Mirrors the paper's traffic expectation: low-rate management and vitals
    events of modest size, with occasional alarms.
    """
    stream = rng.stream("ban-mix")
    events: list[tuple[str, dict[str, Value]]] = []
    for index in range(count):
        draw = stream.random()
        if draw < 0.55:
            events.append(("health.hr", {
                "hr": round(stream.gauss(72.0, 6.0), 1),
                "patient": "bench", "seq": index}))
        elif draw < 0.75:
            events.append(("health.temp", {
                "celsius": round(stream.gauss(36.8, 0.2), 2),
                "patient": "bench", "seq": index}))
        elif draw < 0.90:
            events.append(("health.spo2", {
                "spo2": int(stream.gauss(97.0, 1.0)),
                "pulse": round(stream.gauss(72.0, 6.0), 1),
                "patient": "bench", "seq": index}))
        elif draw < 0.98:
            events.append(("health.bp", {
                "systolic": int(stream.gauss(118.0, 8.0)),
                "diastolic": int(stream.gauss(76.0, 6.0)),
                "patient": "bench", "seq": index}))
        else:
            events.append(("health.hr.alarm", {
                "hr": round(stream.uniform(130.0, 180.0), 1),
                "patient": "bench", "severity": 2, "seq": index}))
    return events
