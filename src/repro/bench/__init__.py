"""Benchmark harness: regenerates the paper's evaluation (Section V).

The harness rebuilds the paper's testbed in simulation — the event bus on
an iPAQ-profile host, publisher and subscriber services on a laptop-profile
host, joined by a USB-IP link calibrated to the paper's quoted link numbers
— and sweeps the same parameters the paper swept:

* :func:`~repro.bench.experiments.run_fig4a` — end-to-end response time vs
  payload size, Siena-based bus vs "C-based" (forwarding) bus (Fig 4a);
* :func:`~repro.bench.experiments.run_fig4b` — sustained throughput vs
  payload size, both buses (Fig 4b);
* :func:`~repro.bench.experiments.run_link_baseline` — the in-text link
  numbers: 1.5 ms average latency (0.6-2.3 ms band) and ~575 KB/s raw
  throughput;

plus the ablations DESIGN.md schedules (fan-out, loss, quenching,
discovery timing).  ``examples/fig4_reproduction.py`` and the pytest
benchmarks under ``benchmarks/`` are thin wrappers over these functions.
"""

from repro.bench.experiments import (
    run_discovery_timing,
    run_fanout,
    run_fig4a,
    run_fig4b,
    run_link_baseline,
    run_loss_sweep,
    run_quench_experiment,
)
from repro.bench.reporting import format_series_table, format_table
from repro.bench.testbed import PaperTestbed, build_paper_testbed

__all__ = [
    "PaperTestbed",
    "build_paper_testbed",
    "run_fig4a",
    "run_fig4b",
    "run_link_baseline",
    "run_fanout",
    "run_loss_sweep",
    "run_quench_experiment",
    "run_discovery_timing",
    "format_table",
    "format_series_table",
]
