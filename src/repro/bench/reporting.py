"""Plain-text reporting for experiment results.

The harness prints the same rows/series the paper's figures plot, so a run
of ``examples/fig4_reproduction.py`` can be eyeballed directly against
Figure 4 (and EXPERIMENTS.md records exactly these tables).
"""

from __future__ import annotations

import io

from repro.bench.experiments import ExperimentResult


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    out = io.StringIO()

    def emit(cells: list[str]) -> None:
        out.write("  ".join(cell.rjust(widths[i])
                            for i, cell in enumerate(cells)).rstrip() + "\n")

    emit(headers)
    emit(["-" * w for w in widths])
    for row in rows:
        emit(row)
    return out.getvalue()


def format_series_table(result: ExperimentResult,
                        precision: int = 1) -> str:
    """One row per x value, one column per series (the figure as a table)."""
    xs: list[float] = []
    for series in result.series:
        for point in series.points:
            if point.x not in xs:
                xs.append(point.x)
    xs.sort()
    headers = [result.x_label] + [s.label for s in result.series]
    rows = []
    for x in xs:
        row = [_fmt_x(x)]
        for series in result.series:
            point = next((p for p in series.points if p.x == x), None)
            row.append("-" if point is None
                       else f"{point.mean:.{precision}f}")
        rows.append(row)
    title = f"== {result.name}: {result.y_label} vs {result.x_label} ==\n"
    return title + format_table(headers, rows)


def to_csv(result: ExperimentResult) -> str:
    """CSV with min/mean/max per series point."""
    out = io.StringIO()
    out.write("series,x,mean,min,max,n\n")
    for series in result.series:
        for point in series.points:
            out.write(f"{series.label},{point.x},{point.mean:.6f},"
                      f"{point.minimum:.6f},{point.maximum:.6f},{point.n}\n")
    return out.getvalue()


def _fmt_x(x: float) -> str:
    return str(int(x)) if float(x).is_integer() else f"{x:g}"
